//! Pure-Rust 3D convolutional neural-network substrate.
//!
//! The paper trains its Steiner-point selector — a 3D Residual U-Net
//! (Section 3.3, Fig. 4) — with PyTorch on GPUs. That stack is not
//! available in this offline pure-Rust reproduction, so this crate
//! implements the required pieces from scratch (DESIGN.md §5,
//! substitution 1):
//!
//! * dense [`Tensor`]s with dynamic shapes ([`tensor`]),
//! * [`Conv3d`](conv3d::Conv3d) with same-padding and full backprop,
//! * ReLU / sigmoid activations ([`activation`]),
//! * ceil-mode 3D max pooling and nearest-neighbor upsampling to arbitrary
//!   target shapes ([`pool`], [`upsample`]) — the pair that lets the U-Net
//!   accept **any** `H × V × M` input,
//! * residual blocks ([`residual`], optionally group-normalized via
//!   [`norm`]) and the full 3D Residual U-Net ([`unet`]),
//! * binary cross-entropy with logits ([`loss`]), SGD and Adam ([`optim`]),
//! * weight (de)serialization ([`serialize`]) and finite-difference
//!   gradient checking ([`gradcheck`]).
//!
//! Everything is `f32`, single-sample (mini-batches are gradient
//! accumulation), and CPU-only — appropriate for the laptop-scale
//! experiments of this reproduction.
//!
//! # Example
//!
//! ```
//! use oarsmt_nn::layer::Layer;
//! use oarsmt_nn::tensor::Tensor;
//! use oarsmt_nn::unet::{UNet3d, UNetConfig};
//!
//! let mut net = UNet3d::new(UNetConfig {
//!     in_channels: 7,
//!     base_channels: 4,
//!     levels: 2,
//!     seed: 0,
//! });
//! // Arbitrary spatial size: 5 x 9 x 3.
//! let x = Tensor::zeros(&[7, 5, 9, 3]);
//! let y = net.forward(&x);
//! assert_eq!(y.shape(), &[1, 5, 9, 3]);
//! ```

// Unsafe is forbidden except under the `simd` feature, whose AVX2+FMA
// intrinsics in `kernels::avx2` are the one sanctioned use (each site
// carries a `// SAFETY:` audit; lint rule D4 enforces both halves).
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_op_in_unsafe_fn))]

pub mod activation;
pub mod conv3d;
pub mod error;
pub mod gradcheck;
pub mod init;
pub mod kernels;
pub mod layer;
pub mod loss;
pub mod norm;
pub mod optim;
pub mod pool;
pub mod residual;
pub mod serialize;
pub mod tensor;
pub mod unet;
pub mod upsample;
pub mod workspace;

pub use error::NnError;
pub use kernels::{simd_available, KernelPolicy};
pub use layer::{Layer, Param};
pub use tensor::Tensor;
pub use unet::{UNet3d, UNetConfig};
pub use workspace::NnWorkspace;
