//! Binary cross-entropy with logits — the paper's training loss
//! (Section 3.5: the selector "is directly fitted with the collected
//! training samples using binary cross-entropy loss").

use crate::activation::sigmoid;
use crate::tensor::Tensor;

/// Result of a loss evaluation: the scalar loss and the gradient with
/// respect to the logits.
#[derive(Debug, Clone, PartialEq)]
pub struct LossOutput {
    /// Mean loss over the *unmasked* elements.
    pub loss: f32,
    /// Gradient of the mean loss with respect to each logit.
    pub grad: Tensor,
}

/// Numerically stable binary cross-entropy on logits with an optional
/// per-element mask.
///
/// For each element with logit `z`, target `t ∈ [0, 1]` and mask weight
/// `w ≥ 0`:
///
/// `loss = w * (max(z, 0) − z·t + ln(1 + e^{−|z|}))`
///
/// The reported loss and gradient are normalized by the total mask weight
/// (or element count when `mask` is `None`). Masking excludes pins and
/// obstacle vertices, whose "final selected probability" is undefined.
///
/// # Panics
///
/// Panics if shapes disagree or the mask weight sums to zero.
pub fn bce_with_logits(logits: &Tensor, targets: &Tensor, mask: Option<&Tensor>) -> LossOutput {
    assert_eq!(logits.shape(), targets.shape(), "logits/targets mismatch");
    if let Some(m) = mask {
        assert_eq!(m.shape(), logits.shape(), "mask shape mismatch");
    }
    let n = logits.len();
    let total_w: f32 = match mask {
        Some(m) => m.data().iter().sum(),
        None => n as f32,
    };
    assert!(total_w > 0.0, "mask must select at least one element");

    let mut grad = Tensor::zeros(logits.shape());
    let mut loss = 0.0f64;
    for i in 0..n {
        let w = mask.map_or(1.0, |m| m.data()[i]);
        if w == 0.0 {
            continue;
        }
        let z = logits.data()[i];
        let t = targets.data()[i];
        debug_assert!((0.0..=1.0).contains(&t), "targets must be probabilities");
        let l = z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
        loss += (w * l) as f64;
        grad.data_mut()[i] = w * (sigmoid(z) - t) / total_w;
    }
    LossOutput {
        loss: (loss / total_w as f64) as f32,
        grad,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_confident_predictions_have_near_zero_loss() {
        let logits = Tensor::from_vec(&[4], vec![20.0, -20.0, 20.0, -20.0]).unwrap();
        let targets = Tensor::from_vec(&[4], vec![1.0, 0.0, 1.0, 0.0]).unwrap();
        let out = bce_with_logits(&logits, &targets, None);
        assert!(out.loss < 1e-6);
        assert!(out.grad.max_abs() < 1e-6);
    }

    #[test]
    fn uniform_logit_zero_gives_ln2() {
        let logits = Tensor::from_vec(&[2], vec![0.0, 0.0]).unwrap();
        let targets = Tensor::from_vec(&[2], vec![1.0, 0.0]).unwrap();
        let out = bce_with_logits(&logits, &targets, None);
        assert!((out.loss - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(&[3], vec![0.3, -1.2, 2.0]).unwrap();
        let targets = Tensor::from_vec(&[3], vec![0.9, 0.1, 0.5]).unwrap();
        let out = bce_with_logits(&logits, &targets, None);
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num = (bce_with_logits(&lp, &targets, None).loss
                - bce_with_logits(&lm, &targets, None).loss)
                / (2.0 * eps);
            assert!((num - out.grad.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn masked_elements_contribute_nothing() {
        let logits = Tensor::from_vec(&[2], vec![5.0, -3.0]).unwrap();
        let targets = Tensor::from_vec(&[2], vec![0.0, 0.0]).unwrap();
        let mask = Tensor::from_vec(&[2], vec![0.0, 1.0]).unwrap();
        let out = bce_with_logits(&logits, &targets, Some(&mask));
        assert_eq!(out.grad.data()[0], 0.0);
        // Loss is just the second element's BCE.
        let unmasked = bce_with_logits(
            &Tensor::from_vec(&[1], vec![-3.0]).unwrap(),
            &Tensor::from_vec(&[1], vec![0.0]).unwrap(),
            None,
        );
        assert!((out.loss - unmasked.loss).abs() < 1e-6);
    }

    #[test]
    fn extreme_logits_stay_finite() {
        let logits = Tensor::from_vec(&[2], vec![500.0, -500.0]).unwrap();
        let targets = Tensor::from_vec(&[2], vec![0.0, 1.0]).unwrap();
        let out = bce_with_logits(&logits, &targets, None);
        assert!(out.loss.is_finite());
        assert!(out.grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn all_zero_mask_panics() {
        let t = Tensor::from_vec(&[1], vec![0.0]).unwrap();
        let mask = Tensor::from_vec(&[1], vec![0.0]).unwrap();
        bce_with_logits(&t, &t, Some(&mask));
    }
}
