//! Binary cross-entropy with logits — the paper's training loss
//! (Section 3.5: the selector "is directly fitted with the collected
//! training samples using binary cross-entropy loss").

use crate::activation::sigmoid;
use crate::tensor::Tensor;

/// Result of a loss evaluation: the scalar loss and the gradient with
/// respect to the logits.
#[derive(Debug, Clone, PartialEq)]
pub struct LossOutput {
    /// Mean loss over the *unmasked* elements.
    pub loss: f32,
    /// Gradient of the mean loss with respect to each logit.
    pub grad: Tensor,
}

/// Numerically stable binary cross-entropy on logits with an optional
/// per-element mask.
///
/// For each element with logit `z`, target `t ∈ [0, 1]` and mask weight
/// `w ≥ 0`:
///
/// `loss = w * (max(z, 0) − z·t + ln(1 + e^{−|z|}))`
///
/// The reported loss and gradient are normalized by the total mask weight
/// (or element count when `mask` is `None`). Masking excludes pins and
/// obstacle vertices, whose "final selected probability" is undefined.
///
/// # Panics
///
/// Panics if shapes disagree or the mask weight sums to zero.
pub fn bce_with_logits(logits: &Tensor, targets: &Tensor, mask: Option<&Tensor>) -> LossOutput {
    assert_eq!(logits.shape(), targets.shape(), "logits/targets mismatch");
    if let Some(m) = mask {
        assert_eq!(m.shape(), logits.shape(), "mask shape mismatch");
    }
    let n = logits.len();
    let total_w: f32 = match mask {
        Some(m) => m.data().iter().sum(),
        None => n as f32,
    };
    assert!(total_w > 0.0, "mask must select at least one element");

    let mut grad = Tensor::zeros(logits.shape());
    let mut loss = 0.0f64;
    for i in 0..n {
        let w = mask.map_or(1.0, |m| m.data()[i]);
        if w == 0.0 {
            continue;
        }
        let z = logits.data()[i];
        let t = targets.data()[i];
        debug_assert!((0.0..=1.0).contains(&t), "targets must be probabilities");
        let l = z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
        loss += (w * l) as f64;
        grad.data_mut()[i] = w * (sigmoid(z) - t) / total_w;
    }
    LossOutput {
        loss: (loss / total_w as f64) as f32,
        grad,
    }
}

/// Batched [`bce_with_logits`] over the channel-major `[1, B, d…]` logits
/// layout of the batched network path (sample `b`'s logits occupy the
/// contiguous block `b·S..(b+1)·S`).
///
/// `targets[b]` / `masks[b]` are sample `b`'s single-sample `[1, d…]`
/// tensors. Every sample is normalized by its **own** mask weight and its
/// mean loss is evaluated element-by-element exactly like the
/// single-sample function, so gradient block `b` and per-sample loss `b`
/// are bit-for-bit what `B` separate [`bce_with_logits`] calls produce.
/// The returned loss is the ascending-`b` `f32` sum of per-sample mean
/// losses (the caller's `1/B` scale turns it into the batch mean, matching
/// the sequential `loss_sum * scale` fold).
///
/// # Panics
///
/// Panics if `logits` is not `[1, B, d…]` with `B == targets.len() ==
/// masks.len()`, a per-sample tensor's length disagrees with the logits
/// block, or a sample's mask weight sums to zero.
pub fn bce_with_logits_batch(
    logits: &Tensor,
    targets: &[&Tensor],
    masks: &[&Tensor],
) -> LossOutput {
    let shape = logits.shape();
    assert!(
        shape.len() >= 2 && shape[0] == 1,
        "expected [1, B, d…] logits, got {shape:?}"
    );
    let bsz = shape[1];
    assert_eq!(targets.len(), bsz, "targets/batch mismatch");
    assert_eq!(masks.len(), bsz, "masks/batch mismatch");
    let spatial = logits.len() / bsz;

    let mut grad = Tensor::zeros(shape);
    let mut loss_sum = 0.0f32;
    for b in 0..bsz {
        let tgt = targets[b].data();
        let msk = masks[b].data();
        assert_eq!(tgt.len(), spatial, "targets[{b}]/logits mismatch");
        assert_eq!(msk.len(), spatial, "masks[{b}]/logits mismatch");
        let total_w: f32 = msk.iter().sum();
        assert!(total_w > 0.0, "mask must select at least one element");
        let z_blk = &logits.data()[b * spatial..(b + 1) * spatial];
        let g_blk = &mut grad.data_mut()[b * spatial..(b + 1) * spatial];
        let mut loss = 0.0f64;
        for i in 0..spatial {
            let w = msk[i];
            if w == 0.0 {
                continue;
            }
            let z = z_blk[i];
            let t = tgt[i];
            debug_assert!((0.0..=1.0).contains(&t), "targets must be probabilities");
            let l = z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
            loss += (w * l) as f64;
            g_blk[i] = w * (sigmoid(z) - t) / total_w;
        }
        loss_sum += (loss / total_w as f64) as f32;
    }
    LossOutput {
        loss: loss_sum,
        grad,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_confident_predictions_have_near_zero_loss() {
        let logits = Tensor::from_vec(&[4], vec![20.0, -20.0, 20.0, -20.0]).unwrap();
        let targets = Tensor::from_vec(&[4], vec![1.0, 0.0, 1.0, 0.0]).unwrap();
        let out = bce_with_logits(&logits, &targets, None);
        assert!(out.loss < 1e-6);
        assert!(out.grad.max_abs() < 1e-6);
    }

    #[test]
    fn uniform_logit_zero_gives_ln2() {
        let logits = Tensor::from_vec(&[2], vec![0.0, 0.0]).unwrap();
        let targets = Tensor::from_vec(&[2], vec![1.0, 0.0]).unwrap();
        let out = bce_with_logits(&logits, &targets, None);
        assert!((out.loss - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(&[3], vec![0.3, -1.2, 2.0]).unwrap();
        let targets = Tensor::from_vec(&[3], vec![0.9, 0.1, 0.5]).unwrap();
        let out = bce_with_logits(&logits, &targets, None);
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num = (bce_with_logits(&lp, &targets, None).loss
                - bce_with_logits(&lm, &targets, None).loss)
                / (2.0 * eps);
            assert!((num - out.grad.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn masked_elements_contribute_nothing() {
        let logits = Tensor::from_vec(&[2], vec![5.0, -3.0]).unwrap();
        let targets = Tensor::from_vec(&[2], vec![0.0, 0.0]).unwrap();
        let mask = Tensor::from_vec(&[2], vec![0.0, 1.0]).unwrap();
        let out = bce_with_logits(&logits, &targets, Some(&mask));
        assert_eq!(out.grad.data()[0], 0.0);
        // Loss is just the second element's BCE.
        let unmasked = bce_with_logits(
            &Tensor::from_vec(&[1], vec![-3.0]).unwrap(),
            &Tensor::from_vec(&[1], vec![0.0]).unwrap(),
            None,
        );
        assert!((out.loss - unmasked.loss).abs() < 1e-6);
    }

    #[test]
    fn extreme_logits_stay_finite() {
        let logits = Tensor::from_vec(&[2], vec![500.0, -500.0]).unwrap();
        let targets = Tensor::from_vec(&[2], vec![0.0, 1.0]).unwrap();
        let out = bce_with_logits(&logits, &targets, None);
        assert!(out.loss.is_finite());
        assert!(out.grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn batched_bce_matches_per_sample_calls_bitwise() {
        // Three samples with distinct targets/masks, stacked [1, 3, S].
        let spatial = 6;
        let bsz = 3;
        let mut zs = Vec::new();
        let mut tgts = Vec::new();
        let mut msks = Vec::new();
        for b in 0..bsz {
            let z: Vec<f32> = (0..spatial)
                .map(|i| ((i + b * spatial) as f32) * 0.37 - 1.1)
                .collect();
            let t: Vec<f32> = (0..spatial)
                .map(|i| ((i * 7 + b) % 10) as f32 / 10.0)
                .collect();
            let m: Vec<f32> = (0..spatial)
                .map(|i| if (i + b) % 4 == 0 { 0.0 } else { 1.0 })
                .collect();
            zs.push(Tensor::from_vec(&[1, spatial], z).unwrap());
            tgts.push(Tensor::from_vec(&[1, spatial], t).unwrap());
            msks.push(Tensor::from_vec(&[1, spatial], m).unwrap());
        }
        let flat: Vec<f32> = zs.iter().flat_map(|z| z.data().iter().copied()).collect();
        let logits = Tensor::from_vec(&[1, bsz, spatial], flat).unwrap();
        let t_refs: Vec<&Tensor> = tgts.iter().collect();
        let m_refs: Vec<&Tensor> = msks.iter().collect();
        let batched = bce_with_logits_batch(&logits, &t_refs, &m_refs);

        let mut loss_sum = 0.0f32;
        for b in 0..bsz {
            let single = bce_with_logits(&zs[b], &tgts[b], Some(&msks[b]));
            loss_sum += single.loss;
            for i in 0..spatial {
                assert_eq!(
                    single.grad.data()[i].to_bits(),
                    batched.grad.data()[b * spatial + i].to_bits(),
                    "grad mismatch at b={b} i={i}"
                );
            }
        }
        assert_eq!(loss_sum.to_bits(), batched.loss.to_bits());
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn all_zero_mask_panics() {
        let t = Tensor::from_vec(&[1], vec![0.0]).unwrap();
        let mask = Tensor::from_vec(&[1], vec![0.0]).unwrap();
        bce_with_logits(&t, &t, Some(&mask));
    }
}
