//! Ceil-mode 3D max pooling.
//!
//! The U-Net downsamples with window-2, stride-2 max pooling in **ceil
//! mode**: an axis of size `d` pools to `ceil(d / 2)`, so odd and even (and
//! even size-1) axes all work. Together with
//! [`upsample`](crate::upsample)-to-target-shape on the decoder side, this
//! is what lets the network consume Hanan graphs of any `H × V × M`.

use crate::layer::Layer;
use crate::tensor::Tensor;
use crate::workspace::{NnWorkspace, ProfKind};

/// Window-2, stride-2, ceil-mode 3D max pooling.
#[derive(Debug, Clone, Default)]
pub struct MaxPool3d {
    cache: Option<PoolCache>,
    /// Retired cache storage, recycled across forward/backward cycles.
    spare: Option<PoolCache>,
}

#[derive(Debug, Clone, Default)]
struct PoolCache {
    in_shape: Vec<usize>,
    /// For each output element, the linear input index of its maximum.
    argmax: Vec<u32>,
}

/// Pooled size of one axis.
#[inline]
pub fn pooled(d: usize) -> usize {
    d.div_ceil(2)
}

impl MaxPool3d {
    /// Creates a pooling layer.
    pub fn new() -> Self {
        MaxPool3d::default()
    }

    /// Shared forward over any rank (the trailing three axes pool, leading
    /// axes pass through), recording the backward cache.
    fn forward_any(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let (ps, pn) = pooled_shape(x.shape());
        let mut out = ws.alloc(&ps[..pn]);
        // `spare` is refilled by backward; inference-only callers never run
        // one, so recycle the previous forward's cache storage instead of
        // dropping it (both vectors are fully overwritten below).
        let mut cache = self
            .spare
            .take()
            .or_else(|| self.cache.take())
            .unwrap_or_default();
        cache.in_shape.clear();
        cache.in_shape.extend_from_slice(x.shape());
        cache.argmax.clear();
        cache.argmax.resize(out.len(), 0);
        pool_core(x.data(), x.shape(), out.data_mut(), Some(&mut cache.argmax));
        self.cache = Some(cache);
        ws.prof_end(t, ProfKind::PoolFwd);
        out
    }

    /// Stateless pooling apply for the shared-selector inference path: same
    /// kernel as [`Layer::forward_in`] without recording an argmax cache.
    /// Works on rank-4 and (channel-major) rank-5 inputs alike.
    pub fn infer_apply(x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let (ps, pn) = pooled_shape(x.shape());
        let mut out = ws.alloc(&ps[..pn]);
        pool_core(x.data(), x.shape(), out.data_mut(), None);
        ws.prof_end(t, ProfKind::PoolFwd);
        out
    }
}

/// Output shape of one pooling step: trailing three axes halve (ceil mode),
/// leading channel (and batch) axes pass through. Returned on the stack
/// (fixed rank ≤ 5) so the warm inference loop stays allocation-free.
fn pooled_shape(s: &[usize]) -> ([usize; 5], usize) {
    let n = s.len();
    let mut out = [0usize; 5];
    out[..n].copy_from_slice(s);
    for d in &mut out[n - 3..n] {
        *d = pooled(*d);
    }
    (out, n)
}

/// The pooling kernel over the trailing three spatial axes; every leading
/// axis is an independent volume (`c` for rank-4, `c·b` channel-major for
/// rank-5, making the batched pass per-sample bit-identical for free).
/// `argmax`, when recording, receives the **absolute** linear input index
/// of each output's maximum, so the backward scatter is layout-agnostic.
fn pool_core(xd: &[f32], s: &[usize], out: &mut [f32], mut argmax: Option<&mut Vec<u32>>) {
    let n = s.len();
    let c_eff: usize = s[..n - 3].iter().product();
    let (d1, d2, d3) = (s[n - 3], s[n - 2], s[n - 1]);
    let (o1, o2, o3) = (pooled(d1), pooled(d2), pooled(d3));
    let spatial = d1 * d2 * d3;
    let mut oi = 0;
    for ci in 0..c_eff {
        let base = ci * spatial;
        for x1 in 0..o1 {
            for y in 0..o2 {
                for z in 0..o3 {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for dx in 0..2 {
                        let ix = x1 * 2 + dx;
                        if ix >= d1 {
                            continue;
                        }
                        for dy in 0..2 {
                            let iy = y * 2 + dy;
                            if iy >= d2 {
                                continue;
                            }
                            for dz in 0..2 {
                                let iz = z * 2 + dz;
                                if iz >= d3 {
                                    continue;
                                }
                                let idx = base + (ix * d2 + iy) * d3 + iz;
                                let v = xd[idx];
                                if v > best {
                                    best = v;
                                    best_idx = idx;
                                }
                            }
                        }
                    }
                    out[oi] = best;
                    if let Some(am) = argmax.as_deref_mut() {
                        am[oi] = best_idx as u32;
                    }
                    oi += 1;
                }
            }
        }
    }
}

impl Layer for MaxPool3d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut ws = NnWorkspace::new();
        self.forward_in(x, &mut ws)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = NnWorkspace::new();
        let g = ws.alloc_copy(grad_out);
        self.backward_in(g, &mut ws)
    }

    fn forward_in(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        assert_eq!(x.shape().len(), 4, "maxpool expects [c, d1, d2, d3]");
        self.forward_any(x, ws)
    }

    fn backward_in(&mut self, grad_out: Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let cache = self.cache.take().expect("maxpool backward without forward");
        assert_eq!(grad_out.len(), cache.argmax.len());
        let mut grad_in = ws.alloc(&cache.in_shape);
        for (oi, &src) in cache.argmax.iter().enumerate() {
            grad_in.data_mut()[src as usize] += grad_out.data()[oi];
        }
        self.spare = Some(cache);
        ws.free(grad_out);
        ws.prof_end(t, ProfKind::PoolBwd);
        grad_in
    }

    // Batched `[c, b, d1, d2, d3]` pooling is the rank-4 kernel with
    // `c·b` leading volumes (channel-major keeps each sample's volume
    // contiguous); the absolute argmax indices make the backward scatter
    // identical in both layouts. Windows are disjoint, so there is no
    // accumulation-order question — per-sample bit identity is structural.
    fn forward_batch_in(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        assert_eq!(
            x.shape().len(),
            5,
            "maxpool batch expects [c, b, d1, d2, d3]"
        );
        self.forward_any(x, ws)
    }

    fn backward_batch_in(&mut self, grad_out: Tensor, ws: &mut NnWorkspace) -> Tensor {
        self.backward_in(grad_out, ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_sizes_use_ceil() {
        assert_eq!(pooled(1), 1);
        assert_eq!(pooled(2), 1);
        assert_eq!(pooled(3), 2);
        assert_eq!(pooled(5), 3);
        assert_eq!(pooled(8), 4);
    }

    #[test]
    fn pools_maxima_per_window() {
        let x = Tensor::from_fn4(&[1, 2, 2, 2], |_, a, b, c| (a * 4 + b * 2 + c) as f32);
        let mut p = MaxPool3d::new();
        let y = p.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 7.0);
    }

    #[test]
    fn odd_axes_keep_tail_windows() {
        let x = Tensor::from_fn4(&[1, 3, 1, 1], |_, a, _, _| a as f32);
        let mut p = MaxPool3d::new();
        let y = p.forward(&x);
        assert_eq!(y.shape(), &[1, 2, 1, 1]);
        assert_eq!(y.data(), &[1.0, 2.0]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let x = Tensor::from_vec(&[1, 2, 1, 1], vec![3.0, 5.0]).unwrap();
        let mut p = MaxPool3d::new();
        let y = p.forward(&x);
        assert_eq!(y.data(), &[5.0]);
        let g = p.backward(&Tensor::from_vec(&[1, 1, 1, 1], vec![2.0]).unwrap());
        assert_eq!(g.data(), &[0.0, 2.0]);
    }

    #[test]
    fn size_one_axes_pass_through() {
        let x = Tensor::from_fn4(&[2, 1, 1, 1], |c, _, _, _| c as f32);
        let mut p = MaxPool3d::new();
        let y = p.forward(&x);
        assert_eq!(y.shape(), &[2, 1, 1, 1]);
        assert_eq!(y.data(), x.data());
    }
}
