//! Ceil-mode 3D max pooling.
//!
//! The U-Net downsamples with window-2, stride-2 max pooling in **ceil
//! mode**: an axis of size `d` pools to `ceil(d / 2)`, so odd and even (and
//! even size-1) axes all work. Together with
//! [`upsample`](crate::upsample)-to-target-shape on the decoder side, this
//! is what lets the network consume Hanan graphs of any `H × V × M`.

use crate::layer::Layer;
use crate::tensor::Tensor;
use crate::workspace::{NnWorkspace, ProfKind};

/// Window-2, stride-2, ceil-mode 3D max pooling.
#[derive(Debug, Clone, Default)]
pub struct MaxPool3d {
    cache: Option<PoolCache>,
    /// Retired cache storage, recycled across forward/backward cycles.
    spare: Option<PoolCache>,
}

#[derive(Debug, Clone, Default)]
struct PoolCache {
    in_shape: Vec<usize>,
    /// For each output element, the linear input index of its maximum.
    argmax: Vec<u32>,
}

/// Pooled size of one axis.
#[inline]
pub fn pooled(d: usize) -> usize {
    d.div_ceil(2)
}

impl MaxPool3d {
    /// Creates a pooling layer.
    pub fn new() -> Self {
        MaxPool3d::default()
    }
}

impl Layer for MaxPool3d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut ws = NnWorkspace::new();
        self.forward_in(x, &mut ws)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = NnWorkspace::new();
        let g = ws.alloc_copy(grad_out);
        self.backward_in(g, &mut ws)
    }

    fn forward_in(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let s = x.shape();
        assert_eq!(s.len(), 4, "maxpool expects [c, d1, d2, d3]");
        let (c, d1, d2, d3) = (s[0], s[1], s[2], s[3]);
        let (o1, o2, o3) = (pooled(d1), pooled(d2), pooled(d3));
        let mut out = ws.alloc(&[c, o1, o2, o3]);
        let mut cache = self.spare.take().unwrap_or_default();
        cache.in_shape.clear();
        cache.in_shape.extend_from_slice(s);
        cache.argmax.clear();
        cache.argmax.resize(out.len(), 0);
        let argmax = &mut cache.argmax;
        let mut oi = 0;
        for ci in 0..c {
            for x1 in 0..o1 {
                for y in 0..o2 {
                    for z in 0..o3 {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dx in 0..2 {
                            let ix = x1 * 2 + dx;
                            if ix >= d1 {
                                continue;
                            }
                            for dy in 0..2 {
                                let iy = y * 2 + dy;
                                if iy >= d2 {
                                    continue;
                                }
                                for dz in 0..2 {
                                    let iz = z * 2 + dz;
                                    if iz >= d3 {
                                        continue;
                                    }
                                    let idx = x.idx4(ci, ix, iy, iz);
                                    let v = x.data()[idx];
                                    if v > best {
                                        best = v;
                                        best_idx = idx;
                                    }
                                }
                            }
                        }
                        out.data_mut()[oi] = best;
                        argmax[oi] = best_idx as u32;
                        oi += 1;
                    }
                }
            }
        }
        self.cache = Some(cache);
        ws.prof_end(t, ProfKind::PoolFwd);
        out
    }

    fn backward_in(&mut self, grad_out: Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let cache = self.cache.take().expect("maxpool backward without forward");
        assert_eq!(grad_out.len(), cache.argmax.len());
        let mut grad_in = ws.alloc(&cache.in_shape);
        for (oi, &src) in cache.argmax.iter().enumerate() {
            grad_in.data_mut()[src as usize] += grad_out.data()[oi];
        }
        self.spare = Some(cache);
        ws.free(grad_out);
        ws.prof_end(t, ProfKind::PoolBwd);
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_sizes_use_ceil() {
        assert_eq!(pooled(1), 1);
        assert_eq!(pooled(2), 1);
        assert_eq!(pooled(3), 2);
        assert_eq!(pooled(5), 3);
        assert_eq!(pooled(8), 4);
    }

    #[test]
    fn pools_maxima_per_window() {
        let x = Tensor::from_fn4(&[1, 2, 2, 2], |_, a, b, c| (a * 4 + b * 2 + c) as f32);
        let mut p = MaxPool3d::new();
        let y = p.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 7.0);
    }

    #[test]
    fn odd_axes_keep_tail_windows() {
        let x = Tensor::from_fn4(&[1, 3, 1, 1], |_, a, _, _| a as f32);
        let mut p = MaxPool3d::new();
        let y = p.forward(&x);
        assert_eq!(y.shape(), &[1, 2, 1, 1]);
        assert_eq!(y.data(), &[1.0, 2.0]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let x = Tensor::from_vec(&[1, 2, 1, 1], vec![3.0, 5.0]).unwrap();
        let mut p = MaxPool3d::new();
        let y = p.forward(&x);
        assert_eq!(y.data(), &[5.0]);
        let g = p.backward(&Tensor::from_vec(&[1, 1, 1, 1], vec![2.0]).unwrap());
        assert_eq!(g.data(), &[0.0, 2.0]);
    }

    #[test]
    fn size_one_axes_pass_through() {
        let x = Tensor::from_fn4(&[2, 1, 1, 1], |c, _, _, _| c as f32);
        let mut p = MaxPool3d::new();
        let y = p.forward(&x);
        assert_eq!(y.shape(), &[2, 1, 1, 1]);
        assert_eq!(y.data(), x.data());
    }
}
