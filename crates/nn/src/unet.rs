//! The 3D Residual U-Net — the paper's Steiner-point selector architecture
//! (Section 3.3, Fig. 4).
//!
//! The network is image-in-image-out: a `[in_channels, H, V, M]` feature
//! volume maps to a `[1, H, V, M]` logit volume for **any** spatial shape.
//! Encoder levels apply a residual block then ceil-mode max pooling;
//! the decoder upsamples back to each skip connection's exact shape,
//! concatenates, and applies another residual block; a `1×1×1` convolution
//! head produces per-vertex logits. Apply [`UNet3d::predict`] (sigmoid) to
//! obtain the final selected probabilities of the paper.

use crate::activation::sigmoid;
use crate::conv3d::Conv3d;
use crate::init::Initializer;
use crate::layer::{Layer, Param};
use crate::pool::MaxPool3d;
use crate::residual::ResidualBlock;
use crate::tensor::Tensor;
use crate::upsample::Upsample3d;
use crate::workspace::NnWorkspace;
use oarsmt_telemetry::Counter;

/// Configuration of a [`UNet3d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UNetConfig {
    /// Input feature channels (the paper's encoding uses 7).
    pub in_channels: usize,
    /// Channels of the first encoder level; level `i` uses
    /// `base_channels * 2^i`.
    pub base_channels: usize,
    /// Number of encoder/decoder levels (the bottleneck adds one more
    /// resolution).
    pub levels: usize,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for UNetConfig {
    fn default() -> Self {
        UNetConfig {
            in_channels: 7,
            base_channels: 8,
            levels: 2,
            seed: 0,
        }
    }
}

/// The 3D Residual U-Net.
#[derive(Debug, Clone)]
pub struct UNet3d {
    config: UNetConfig,
    enc: Vec<ResidualBlock>,
    pools: Vec<MaxPool3d>,
    bottleneck: ResidualBlock,
    ups: Vec<Upsample3d>,
    dec: Vec<ResidualBlock>,
    head: Conv3d,
    /// Channel count entering decoder level `i` from below (what gets
    /// upsampled).
    up_channels: Vec<usize>,
    /// Whether a forward pass is pending its backward.
    forward_ran: bool,
    /// Reused stack: skip activations during forward, skip gradients
    /// during backward. Always empty between passes.
    scratch: Vec<Tensor>,
}

impl UNet3d {
    /// Builds the network from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`, `base_channels == 0` or
    /// `in_channels == 0`.
    pub fn new(config: UNetConfig) -> Self {
        assert!(config.levels > 0 && config.base_channels > 0 && config.in_channels > 0);
        let mut init = Initializer::new(config.seed);
        let c = |i: usize| config.base_channels << i;
        let mut enc = Vec::new();
        let mut pools = Vec::new();
        for i in 0..config.levels {
            let in_c = if i == 0 { config.in_channels } else { c(i - 1) };
            enc.push(ResidualBlock::new(in_c, c(i), 3, &mut init));
            pools.push(MaxPool3d::new());
        }
        let bottleneck = ResidualBlock::new(c(config.levels - 1), c(config.levels), 3, &mut init);
        let mut ups = Vec::new();
        let mut dec = Vec::new();
        let mut up_channels = Vec::new();
        for i in 0..config.levels {
            // Decoder level i receives (from below) the output of decoder
            // level i+1 (c(i+1) channels) or the bottleneck (c(levels)).
            let from_below = if i + 1 == config.levels {
                c(config.levels)
            } else {
                c(i + 1)
            };
            ups.push(Upsample3d::to_shape([1, 1, 1]));
            dec.push(ResidualBlock::new(from_below + c(i), c(i), 3, &mut init));
            up_channels.push(from_below);
        }
        let head = Conv3d::new(config.base_channels, 1, 1, &mut init);
        UNet3d {
            config,
            enc,
            pools,
            bottleneck,
            ups,
            dec,
            head,
            up_channels,
            forward_ran: false,
            scratch: Vec::new(),
        }
    }

    /// The network configuration.
    pub fn config(&self) -> &UNetConfig {
        &self.config
    }

    /// Sets the output head's bias so a freshly initialized network emits
    /// probabilities around `sigmoid(bias)` instead of `0.5`. Steiner-point
    /// labels are sparse, and the combinatorial-MCTS actor's telescoping
    /// product (Eq. 1 of the paper) degenerates when every probability is
    /// large, so selectors initialize the head bias negative.
    pub fn init_output_bias(&mut self, bias: f32) {
        let mut params = self.head.params_mut();
        params
            .last_mut()
            .expect("head has weight and bias")
            .value
            .fill(bias);
    }

    /// Inference: per-vertex probabilities in `(0, 1)` — the "final selected
    /// probability" array of the paper. Shape `[1, H, V, M]`.
    pub fn predict(&mut self, x: &Tensor) -> Tensor {
        self.predict_in(x, &mut NnWorkspace::new())
    }

    /// Workspace-threaded [`UNet3d::predict`]: runs the forward pass in
    /// inference mode (no backward caches are recorded) with every
    /// intermediate drawn from the workspace pool, and applies the sigmoid
    /// in place on the logits. Bit-identical to `predict`.
    pub fn predict_in(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        let saved = ws.training;
        ws.training = false;
        let mut logits = self.forward_in(x, ws);
        ws.training = saved;
        self.forward_ran = false; // inference leaves no pending backward
        for v in logits.data_mut() {
            *v = sigmoid(*v);
        }
        logits
    }

    /// Batched [`UNet3d::predict_in`] over a channel-major
    /// `[in_channels, B, H, V, M]` stack of same-shape inputs: one pass
    /// through the batched layers (GEMM `N = B·H·V·M`), sigmoid applied in
    /// place. Sample `b` of the `[1, B, H, V, M]` result is bit-identical
    /// to `predict_in` on that sample alone.
    pub fn predict_batch_in(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        let saved = ws.training;
        ws.training = false;
        let mut probs = self.forward_batch_in(x, ws);
        ws.training = saved;
        self.forward_ran = false; // inference leaves no pending backward
        for v in probs.data_mut() {
            *v = sigmoid(*v);
        }
        probs
    }

    /// Shared-selector inference: [`UNet3d::predict_in`] through `&self`,
    /// so one network can serve many threads (or sit behind an `Arc`)
    /// without cloning weights. No caches are written; results are
    /// bit-identical to `predict_in`.
    ///
    /// # Panics
    ///
    /// Panics if the network has more than 8 levels (fixed skip scratch).
    pub fn infer_in(&self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        assert_eq!(x.shape().len(), 4);
        assert_eq!(x.shape()[0], self.config.in_channels, "channel mismatch");
        assert!(
            self.config.levels <= 8,
            "infer_in supports at most 8 levels"
        );
        ws.counters.add(Counter::GemmBatchCols, 1);
        ws.counters.bump(Counter::BatchFlushes);
        let outer_slot = ws.set_mac_slot(Counter::MacsOther);
        let mut skips: [Option<Tensor>; 8] = std::array::from_fn(|_| None);
        let mut cur: Option<Tensor> = None;
        #[allow(clippy::needless_range_loop)] // `i` drives enc, skips, and the MAC slot
        for i in 0..self.config.levels {
            ws.set_mac_slot(Counter::enc_macs(i));
            let y = self.enc[i].infer_in(cur.as_ref().unwrap_or(x), ws);
            if let Some(t) = cur.take() {
                ws.free(t);
            }
            let pooled = MaxPool3d::infer_apply(&y, ws);
            skips[i] = Some(y);
            cur = Some(pooled);
        }
        let mut cur = {
            let t = cur.expect("levels > 0");
            ws.set_mac_slot(Counter::MacsBottleneck);
            let b = self.bottleneck.infer_in(&t, ws);
            ws.free(t);
            b
        };
        for i in (0..self.config.levels).rev() {
            ws.set_mac_slot(Counter::dec_macs(i));
            let skip = skips[i].take().expect("one skip per level");
            let (s0, s1, s2, s3) = {
                let s = skip.shape();
                (s[0], s[1], s[2], s[3])
            };
            let up = Upsample3d::infer_apply(&cur, [s1, s2, s3], ws);
            ws.free(cur);
            let mut cat = ws.alloc(&[up.shape()[0] + s0, s1, s2, s3]);
            cat.data_mut()[..up.len()].copy_from_slice(up.data());
            cat.data_mut()[up.len()..].copy_from_slice(skip.data());
            ws.free(up);
            ws.free(skip);
            cur = self.dec[i].infer_in(&cat, ws);
            ws.free(cat);
        }
        ws.set_mac_slot(Counter::MacsHead);
        let mut out = self.head.infer_in(&cur, ws);
        ws.free(cur);
        ws.restore_mac_slot(outer_slot);
        for v in out.data_mut() {
            *v = sigmoid(*v);
        }
        out
    }

    /// Routes every convolution through the naive reference loops
    /// (bit-identity oracle; see [`Conv3d::set_naive`]).
    #[cfg(any(test, feature = "naive-ref"))]
    pub fn set_naive(&mut self, on: bool) {
        for b in &mut self.enc {
            b.set_naive(on);
        }
        self.bottleneck.set_naive(on);
        for b in &mut self.dec {
            b.set_naive(on);
        }
        self.head.set_naive(on);
    }
}

impl Layer for UNet3d {
    /// Forward pass producing **logits** of shape `[1, H, V, M]`.
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.forward_in(x, &mut NnWorkspace::new())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = NnWorkspace::new();
        let g = ws.alloc_copy(grad_out);
        self.backward_in(g, &mut ws)
    }

    fn forward_in(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        assert_eq!(x.shape().len(), 4);
        assert_eq!(x.shape()[0], self.config.in_channels, "channel mismatch");
        debug_assert!(self.scratch.is_empty());
        // A single-sample forward is a batch of one for the occupancy
        // telemetry (`gemm_batch_cols / batch_flushes`).
        ws.counters.add(Counter::GemmBatchCols, 1);
        ws.counters.bump(Counter::BatchFlushes);
        let outer_slot = ws.set_mac_slot(Counter::MacsOther);
        let mut cur: Option<Tensor> = None;
        for i in 0..self.config.levels {
            ws.set_mac_slot(Counter::enc_macs(i));
            let y = self.enc[i].forward_in(cur.as_ref().unwrap_or(x), ws);
            if let Some(t) = cur.take() {
                ws.free(t);
            }
            let pooled = self.pools[i].forward_in(&y, ws);
            self.scratch.push(y);
            cur = Some(pooled);
        }
        let mut cur = {
            // lint: panic-ok(structural: UNetConfig validates levels >= 1, so the encoder loop always ran and `cur` is Some)
            let t = cur.expect("levels > 0");
            ws.set_mac_slot(Counter::MacsBottleneck);
            let b = self.bottleneck.forward_in(&t, ws);
            ws.free(t);
            b
        };
        for i in (0..self.config.levels).rev() {
            ws.set_mac_slot(Counter::dec_macs(i));
            // lint: panic-ok(structural: the encoder pushed exactly `levels` skips in this same call and the decoder pops each level once)
            let skip = self.scratch.pop().expect("one skip per level");
            let (s0, s1, s2, s3) = {
                let s = skip.shape();
                (s[0], s[1], s[2], s[3])
            };
            self.ups[i].set_target([s1, s2, s3]);
            let up = self.ups[i].forward_in(&cur, ws);
            ws.free(cur);
            // cat = [up ; skip] along channels, into a pooled buffer.
            let mut cat = ws.alloc(&[up.shape()[0] + s0, s1, s2, s3]);
            cat.data_mut()[..up.len()].copy_from_slice(up.data());
            cat.data_mut()[up.len()..].copy_from_slice(skip.data());
            ws.free(up);
            ws.free(skip);
            cur = self.dec[i].forward_in(&cat, ws);
            ws.free(cat);
        }
        self.forward_ran = true;
        ws.set_mac_slot(Counter::MacsHead);
        let out = self.head.forward_in(&cur, ws);
        ws.free(cur);
        ws.restore_mac_slot(outer_slot);
        out
    }

    fn backward_in(&mut self, grad_out: Tensor, ws: &mut NnWorkspace) -> Tensor {
        assert!(self.forward_ran, "unet backward without forward");
        self.forward_ran = false;
        debug_assert!(self.scratch.is_empty());
        let outer_slot = ws.set_mac_slot(Counter::MacsHead);
        let mut grad = self.head.backward_in(grad_out, ws);
        for i in 0..self.config.levels {
            ws.set_mac_slot(Counter::dec_macs(i));
            grad = self.dec[i].backward_in(grad, ws);
            // Split [g_up ; g_skip] along channels (pooled buffers).
            let c0 = self.up_channels[i];
            let s = grad.shape().to_vec();
            assert!(c0 < s[0], "split point must leave both halves");
            let spatial = s[1] * s[2] * s[3];
            let mut g_up = ws.alloc(&[c0, s[1], s[2], s[3]]);
            let mut g_skip = ws.alloc(&[s[0] - c0, s[1], s[2], s[3]]);
            g_up.data_mut()
                .copy_from_slice(&grad.data()[..c0 * spatial]);
            g_skip
                .data_mut()
                .copy_from_slice(&grad.data()[c0 * spatial..]);
            ws.free(grad);
            self.scratch.push(g_skip);
            grad = self.ups[i].backward_in(g_up, ws);
        }
        ws.set_mac_slot(Counter::MacsBottleneck);
        grad = self.bottleneck.backward_in(grad, ws);
        for i in (0..self.config.levels).rev() {
            ws.set_mac_slot(Counter::enc_macs(i));
            grad = self.pools[i].backward_in(grad, ws);
            let g_skip = self.scratch.pop().expect("one skip gradient per level");
            grad.add_assign(&g_skip);
            ws.free(g_skip);
            grad = self.enc[i].backward_in(grad, ws);
        }
        ws.restore_mac_slot(outer_slot);
        grad
    }

    /// Batched forward over channel-major `[in_channels, B, H, V, M]`
    /// stacks, producing `[1, B, H, V, M]` logits. Same dataflow as
    /// [`Layer::forward_in`] with every sublayer's batched variant; the
    /// skip concatenation stays two `copy_from_slice`s because rank-5 is
    /// channel-major too.
    fn forward_batch_in(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        assert_eq!(x.shape().len(), 5);
        assert_eq!(x.shape()[0], self.config.in_channels, "channel mismatch");
        debug_assert!(self.scratch.is_empty());
        ws.counters.add(Counter::GemmBatchCols, x.shape()[1] as u64);
        ws.counters.bump(Counter::BatchFlushes);
        let outer_slot = ws.set_mac_slot(Counter::MacsOther);
        let mut cur: Option<Tensor> = None;
        for i in 0..self.config.levels {
            ws.set_mac_slot(Counter::enc_macs(i));
            let y = self.enc[i].forward_batch_in(cur.as_ref().unwrap_or(x), ws);
            if let Some(t) = cur.take() {
                ws.free(t);
            }
            let pooled = self.pools[i].forward_batch_in(&y, ws);
            self.scratch.push(y);
            cur = Some(pooled);
        }
        let mut cur = {
            // lint: panic-ok(structural: UNetConfig validates levels >= 1, so the encoder loop always ran and `cur` is Some)
            let t = cur.expect("levels > 0");
            ws.set_mac_slot(Counter::MacsBottleneck);
            let b = self.bottleneck.forward_batch_in(&t, ws);
            ws.free(t);
            b
        };
        for i in (0..self.config.levels).rev() {
            ws.set_mac_slot(Counter::dec_macs(i));
            // lint: panic-ok(structural: the encoder pushed exactly `levels` skips in this same call and the decoder pops each level once)
            let skip = self.scratch.pop().expect("one skip per level");
            let (s0, sb, s1, s2, s3) = {
                let s = skip.shape();
                (s[0], s[1], s[2], s[3], s[4])
            };
            self.ups[i].set_target([s1, s2, s3]);
            let up = self.ups[i].forward_batch_in(&cur, ws);
            ws.free(cur);
            let mut cat = ws.alloc(&[up.shape()[0] + s0, sb, s1, s2, s3]);
            cat.data_mut()[..up.len()].copy_from_slice(up.data());
            cat.data_mut()[up.len()..].copy_from_slice(skip.data());
            ws.free(up);
            ws.free(skip);
            cur = self.dec[i].forward_batch_in(&cat, ws);
            ws.free(cat);
        }
        self.forward_ran = true;
        ws.set_mac_slot(Counter::MacsHead);
        let out = self.head.forward_batch_in(&cur, ws);
        ws.free(cur);
        ws.restore_mac_slot(outer_slot);
        out
    }

    fn backward_batch_in(&mut self, grad_out: Tensor, ws: &mut NnWorkspace) -> Tensor {
        assert!(self.forward_ran, "unet backward without forward");
        self.forward_ran = false;
        debug_assert!(self.scratch.is_empty());
        let outer_slot = ws.set_mac_slot(Counter::MacsHead);
        let mut grad = self.head.backward_batch_in(grad_out, ws);
        for i in 0..self.config.levels {
            ws.set_mac_slot(Counter::dec_macs(i));
            grad = self.dec[i].backward_batch_in(grad, ws);
            let c0 = self.up_channels[i];
            let (sc, sb, s1, s2, s3) = {
                let s = grad.shape();
                (s[0], s[1], s[2], s[3], s[4])
            };
            assert!(c0 < sc, "split point must leave both halves");
            let stride = sb * s1 * s2 * s3;
            let mut g_up = ws.alloc(&[c0, sb, s1, s2, s3]);
            let mut g_skip = ws.alloc(&[sc - c0, sb, s1, s2, s3]);
            g_up.data_mut().copy_from_slice(&grad.data()[..c0 * stride]);
            g_skip
                .data_mut()
                .copy_from_slice(&grad.data()[c0 * stride..]);
            ws.free(grad);
            self.scratch.push(g_skip);
            grad = self.ups[i].backward_batch_in(g_up, ws);
        }
        ws.set_mac_slot(Counter::MacsBottleneck);
        grad = self.bottleneck.backward_batch_in(grad, ws);
        for i in (0..self.config.levels).rev() {
            ws.set_mac_slot(Counter::enc_macs(i));
            grad = self.pools[i].backward_batch_in(grad, ws);
            let g_skip = self.scratch.pop().expect("one skip gradient per level");
            grad.add_assign(&g_skip);
            ws.free(g_skip);
            grad = self.enc[i].backward_batch_in(grad, ws);
        }
        ws.restore_mac_slot(outer_slot);
        grad
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = Vec::new();
        for b in &mut self.enc {
            ps.extend(b.params_mut());
        }
        ps.extend(self.bottleneck.params_mut());
        for b in &mut self.dec {
            ps.extend(b.params_mut());
        }
        ps.extend(self.head.params_mut());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    fn tiny_net(seed: u64) -> UNet3d {
        UNet3d::new(UNetConfig {
            in_channels: 2,
            base_channels: 2,
            levels: 2,
            seed,
        })
    }

    #[test]
    fn output_is_single_channel_same_spatial_shape() {
        let mut net = tiny_net(0);
        for dims in [[4, 4, 2], [5, 3, 1], [7, 2, 3], [1, 1, 1], [9, 9, 4]] {
            let x = Tensor::zeros(&[2, dims[0], dims[1], dims[2]]);
            let y = net.forward(&x);
            assert_eq!(y.shape(), &[1, dims[0], dims[1], dims[2]], "dims {dims:?}");
        }
    }

    #[test]
    fn predict_outputs_probabilities() {
        let mut net = tiny_net(1);
        let x = Initializer::new(2).uniform(&[2, 4, 5, 2], 1.0);
        let p = net.predict(&x);
        for &v in p.data() {
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn deeper_nets_still_handle_tiny_inputs() {
        let mut net = UNet3d::new(UNetConfig {
            in_channels: 3,
            base_channels: 2,
            levels: 3,
            seed: 4,
        });
        let x = Tensor::zeros(&[3, 3, 2, 1]);
        let y = net.forward(&x);
        assert_eq!(y.shape(), &[1, 3, 2, 1]);
    }

    #[test]
    fn same_seed_same_output() {
        let x = Initializer::new(11).uniform(&[2, 4, 4, 2], 1.0);
        let ya = tiny_net(42).forward(&x);
        let yb = tiny_net(42).forward(&x);
        let yc = tiny_net(43).forward(&x);
        assert_eq!(ya, yb);
        assert_ne!(ya, yc);
    }

    #[test]
    fn gradcheck_whole_network() {
        // Small input to keep the finite-difference loop cheap.
        let mut net = UNet3d::new(UNetConfig {
            in_channels: 2,
            base_channels: 1,
            levels: 1,
            seed: 3,
        });
        let x = Initializer::new(5).uniform(&[2, 2, 2, 1], 1.0);
        check_layer_gradients(&mut net, &x, 1e-2, 5e-2);
    }

    #[test]
    fn param_count_grows_with_width() {
        let mut small = tiny_net(0);
        let mut big = UNet3d::new(UNetConfig {
            in_channels: 2,
            base_channels: 4,
            levels: 2,
            seed: 0,
        });
        assert!(big.param_count() > small.param_count());
    }

    #[test]
    fn backward_returns_input_shaped_gradient() {
        let mut net = tiny_net(9);
        let x = Initializer::new(10).uniform(&[2, 5, 4, 2], 1.0);
        let y = net.forward(&x);
        let g = net.backward(&y);
        assert_eq!(g.shape(), x.shape());
    }

    fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for (i, (p, q)) in a.data().iter().zip(b.data()).enumerate() {
            assert_eq!(p.to_bits(), q.to_bits(), "{what}: element {i}: {p} vs {q}");
        }
    }

    /// Whole-network GEMM-vs-naive bit-identity: logits, input gradients and
    /// every parameter gradient must match the reference loops exactly.
    #[test]
    fn gemm_network_matches_naive_oracle_bitwise() {
        for (levels, dims, seed) in [
            (1, [3, 5, 7], 21u64),
            (2, [5, 4, 6], 22),
            (3, [7, 3, 5], 23),
        ] {
            let mut fast = UNet3d::new(UNetConfig {
                in_channels: 3,
                base_channels: 2,
                levels,
                seed,
            });
            let mut naive = fast.clone();
            naive.set_naive(true);
            let x = Initializer::new(seed + 100).uniform(&[3, dims[0], dims[1], dims[2]], 1.0);
            let mut ws = NnWorkspace::new();
            let y_fast = fast.forward_in(&x, &mut ws);
            let y_naive = naive.forward(&x);
            assert_bits_eq(&y_fast, &y_naive, "logits");
            let g = ws.alloc_copy(&y_fast);
            let gi_fast = fast.backward_in(g, &mut ws);
            let gi_naive = naive.backward(&y_naive);
            assert_bits_eq(&gi_fast, &gi_naive, "input grad");
            for (pf, pn) in fast.params_mut().iter().zip(naive.params_mut().iter()) {
                assert_bits_eq(&pf.grad, &pn.grad, "param grad");
            }
        }
    }

    /// Whole-network batched-vs-sequential bit identity: logits, input
    /// gradients and accumulated parameter gradients of one batched pass
    /// must equal running the single-sample pass over the samples in
    /// order, for every batch size — and the batched naive oracle must
    /// agree with the batched GEMM route.
    #[test]
    fn batched_network_matches_sequential_bitwise() {
        for (levels, dims, seed) in [
            (1usize, [3usize, 5, 7], 51u64),
            (2, [5, 4, 6], 52),
            (3, [7, 3, 5], 53),
        ] {
            for &bsz in &[1usize, 4] {
                let proto = UNet3d::new(UNetConfig {
                    in_channels: 3,
                    base_channels: 2,
                    levels,
                    seed,
                });
                let xs: Vec<Tensor> = (0..bsz)
                    .map(|b| {
                        Initializer::new(seed + 100 + b as u64)
                            .uniform(&[3, dims[0], dims[1], dims[2]], 1.0)
                    })
                    .collect();

                let mut seq = proto.clone();
                let mut ws = NnWorkspace::new();
                let mut ys = Vec::new();
                let mut gis = Vec::new();
                for x in &xs {
                    let y = seq.forward_in(x, &mut ws);
                    let g = ws.alloc_copy(&y);
                    gis.push(seq.backward_in(g, &mut ws));
                    ys.push(y);
                }

                let mut bat = proto.clone();
                let mut wsb = NnWorkspace::new();
                let x5 = Tensor::stack_batch(&xs.iter().collect::<Vec<_>>());
                let y5 = bat.forward_batch_in(&x5, &mut wsb);
                let g5 = wsb.alloc_copy(&y5);
                let gi5 = bat.backward_batch_in(g5, &mut wsb);

                let what = format!("levels {levels} B{bsz}");
                for b in 0..bsz {
                    assert_bits_eq(&y5.unstack_sample(b), &ys[b], &format!("{what} y[{b}]"));
                    assert_bits_eq(
                        &gi5.unstack_sample(b),
                        &gis[b],
                        &format!("{what} grad_in[{b}]"),
                    );
                }
                for (pb, ps) in bat.params_mut().iter().zip(seq.params_mut().iter()) {
                    assert_bits_eq(&pb.grad, &ps.grad, &format!("{what} param grad"));
                }

                let mut nv = proto.clone();
                nv.set_naive(true);
                let mut wsn = NnWorkspace::new();
                let yn = nv.forward_batch_in(&x5, &mut wsn);
                let gn = wsn.alloc_copy(&yn);
                let gin = nv.backward_batch_in(gn, &mut wsn);
                assert_bits_eq(&yn, &y5, &format!("{what} naive y"));
                assert_bits_eq(&gin, &gi5, &format!("{what} naive grad_in"));
            }
        }
    }

    /// `predict_batch_in` per-sample bit identity with `predict_in`, plus
    /// the occupancy counters: B columns, one flush.
    #[test]
    fn predict_batch_in_matches_predict_in_per_sample() {
        let proto = tiny_net(61);
        let xs: Vec<Tensor> = (0..3)
            .map(|b| Initializer::new(62 + b).uniform(&[2, 5, 3, 4], 1.0))
            .collect();
        let mut single = proto.clone();
        let mut ws = NnWorkspace::new();
        let ps: Vec<Tensor> = xs.iter().map(|x| single.predict_in(x, &mut ws)).collect();

        let mut bat = proto.clone();
        let mut wsb = NnWorkspace::new();
        let x5 = Tensor::stack_batch(&xs.iter().collect::<Vec<_>>());
        let p5 = bat.predict_batch_in(&x5, &mut wsb);
        assert!(
            wsb.training(),
            "predict_batch_in must restore training mode"
        );
        for (b, p) in ps.iter().enumerate() {
            assert_bits_eq(&p5.unstack_sample(b), p, &format!("probs[{b}]"));
        }
        assert_eq!(wsb.counters.get(Counter::GemmBatchCols), 3);
        assert_eq!(wsb.counters.get(Counter::BatchFlushes), 1);
    }

    /// The `&self` shared-inference path must reproduce `predict_in`
    /// bit for bit (and leave no caches behind by construction).
    #[test]
    fn infer_in_matches_predict_in() {
        let proto = tiny_net(71);
        let mut owned = proto.clone();
        let mut ws = NnWorkspace::new();
        for (i, dims) in [[4, 4, 2], [5, 3, 1], [7, 2, 3]].iter().enumerate() {
            let x = Initializer::new(72 + i as u64).uniform(&[2, dims[0], dims[1], dims[2]], 1.0);
            let p_ref = owned.predict_in(&x, &mut ws);
            let shared = &proto;
            let p = shared.infer_in(&x, &mut ws);
            assert_bits_eq(&p, &p_ref, "shared inference");
            ws.free(p_ref);
            ws.free(p);
        }
    }

    /// Reusing one workspace across passes must not change any bit, and
    /// `predict_in` must match legacy `predict`.
    #[test]
    fn workspace_reuse_is_bitwise_stable() {
        let mut legacy = tiny_net(31);
        let mut pooled = legacy.clone();
        let x = Initializer::new(32).uniform(&[2, 5, 3, 4], 1.0);
        let y_ref = legacy.forward(&x);
        let gi_ref = legacy.backward(&y_ref);
        let p_ref = legacy.predict(&x);
        let mut ws = NnWorkspace::new();
        for _ in 0..2 {
            pooled.zero_grad();
            let y = pooled.forward_in(&x, &mut ws);
            assert_bits_eq(&y, &y_ref, "logits");
            let g = ws.alloc_copy(&y);
            let gi = pooled.backward_in(g, &mut ws);
            assert_bits_eq(&gi, &gi_ref, "input grad");
            let p = pooled.predict_in(&x, &mut ws);
            assert_bits_eq(&p, &p_ref, "probabilities");
            assert!(ws.training(), "predict_in must restore training mode");
            ws.free(y);
            ws.free(gi);
            ws.free(p);
        }
    }
}
