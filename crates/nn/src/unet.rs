//! The 3D Residual U-Net — the paper's Steiner-point selector architecture
//! (Section 3.3, Fig. 4).
//!
//! The network is image-in-image-out: a `[in_channels, H, V, M]` feature
//! volume maps to a `[1, H, V, M]` logit volume for **any** spatial shape.
//! Encoder levels apply a residual block then ceil-mode max pooling;
//! the decoder upsamples back to each skip connection's exact shape,
//! concatenates, and applies another residual block; a `1×1×1` convolution
//! head produces per-vertex logits. Apply [`UNet3d::predict`] (sigmoid) to
//! obtain the final selected probabilities of the paper.

use crate::activation::sigmoid;
use crate::conv3d::Conv3d;
use crate::init::Initializer;
use crate::layer::{Layer, Param};
use crate::pool::MaxPool3d;
use crate::residual::ResidualBlock;
use crate::tensor::Tensor;
use crate::upsample::Upsample3d;

/// Configuration of a [`UNet3d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UNetConfig {
    /// Input feature channels (the paper's encoding uses 7).
    pub in_channels: usize,
    /// Channels of the first encoder level; level `i` uses
    /// `base_channels * 2^i`.
    pub base_channels: usize,
    /// Number of encoder/decoder levels (the bottleneck adds one more
    /// resolution).
    pub levels: usize,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for UNetConfig {
    fn default() -> Self {
        UNetConfig {
            in_channels: 7,
            base_channels: 8,
            levels: 2,
            seed: 0,
        }
    }
}

/// The 3D Residual U-Net.
#[derive(Debug, Clone)]
pub struct UNet3d {
    config: UNetConfig,
    enc: Vec<ResidualBlock>,
    pools: Vec<MaxPool3d>,
    bottleneck: ResidualBlock,
    ups: Vec<Upsample3d>,
    dec: Vec<ResidualBlock>,
    head: Conv3d,
    /// Channel count entering decoder level `i` from below (what gets
    /// upsampled).
    up_channels: Vec<usize>,
    /// Skip tensors of the most recent forward pass.
    skips: Option<Vec<Tensor>>,
}

impl UNet3d {
    /// Builds the network from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`, `base_channels == 0` or
    /// `in_channels == 0`.
    pub fn new(config: UNetConfig) -> Self {
        assert!(config.levels > 0 && config.base_channels > 0 && config.in_channels > 0);
        let mut init = Initializer::new(config.seed);
        let c = |i: usize| config.base_channels << i;
        let mut enc = Vec::new();
        let mut pools = Vec::new();
        for i in 0..config.levels {
            let in_c = if i == 0 { config.in_channels } else { c(i - 1) };
            enc.push(ResidualBlock::new(in_c, c(i), 3, &mut init));
            pools.push(MaxPool3d::new());
        }
        let bottleneck = ResidualBlock::new(c(config.levels - 1), c(config.levels), 3, &mut init);
        let mut ups = Vec::new();
        let mut dec = Vec::new();
        let mut up_channels = Vec::new();
        for i in 0..config.levels {
            // Decoder level i receives (from below) the output of decoder
            // level i+1 (c(i+1) channels) or the bottleneck (c(levels)).
            let from_below = if i + 1 == config.levels {
                c(config.levels)
            } else {
                c(i + 1)
            };
            ups.push(Upsample3d::to_shape([1, 1, 1]));
            dec.push(ResidualBlock::new(from_below + c(i), c(i), 3, &mut init));
            up_channels.push(from_below);
        }
        let head = Conv3d::new(config.base_channels, 1, 1, &mut init);
        UNet3d {
            config,
            enc,
            pools,
            bottleneck,
            ups,
            dec,
            head,
            up_channels,
            skips: None,
        }
    }

    /// The network configuration.
    pub fn config(&self) -> &UNetConfig {
        &self.config
    }

    /// Sets the output head's bias so a freshly initialized network emits
    /// probabilities around `sigmoid(bias)` instead of `0.5`. Steiner-point
    /// labels are sparse, and the combinatorial-MCTS actor's telescoping
    /// product (Eq. 1 of the paper) degenerates when every probability is
    /// large, so selectors initialize the head bias negative.
    pub fn init_output_bias(&mut self, bias: f32) {
        let mut params = self.head.params_mut();
        params
            .last_mut()
            .expect("head has weight and bias")
            .value
            .fill(bias);
    }

    /// Inference: per-vertex probabilities in `(0, 1)` — the "final selected
    /// probability" array of the paper. Shape `[1, H, V, M]`.
    pub fn predict(&mut self, x: &Tensor) -> Tensor {
        let logits = self.forward(x);
        self.skips = None; // inference does not need the caches
        logits.map(sigmoid)
    }
}

impl Layer for UNet3d {
    /// Forward pass producing **logits** of shape `[1, H, V, M]`.
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().len(), 4);
        assert_eq!(x.shape()[0], self.config.in_channels, "channel mismatch");
        let mut skips = Vec::with_capacity(self.config.levels);
        let mut cur = x.clone();
        for i in 0..self.config.levels {
            cur = self.enc[i].forward(&cur);
            skips.push(cur.clone());
            cur = self.pools[i].forward(&cur);
        }
        cur = self.bottleneck.forward(&cur);
        for i in (0..self.config.levels).rev() {
            let s = skips[i].shape();
            self.ups[i].set_target([s[1], s[2], s[3]]);
            cur = self.ups[i].forward(&cur);
            cur = cur.concat_channels(&skips[i]);
            cur = self.dec[i].forward(&cur);
        }
        self.skips = Some(skips);
        self.head.forward(&cur)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let _skips = self.skips.take().expect("unet backward without forward");
        let mut grad = self.head.backward(grad_out);
        let mut skip_grads: Vec<Option<Tensor>> = vec![None; self.config.levels];
        for (i, slot) in skip_grads.iter_mut().enumerate() {
            grad = self.dec[i].backward(&grad);
            let (g_up, g_skip) = grad.split_channels(self.up_channels[i]);
            *slot = Some(g_skip);
            grad = self.ups[i].backward(&g_up);
        }
        grad = self.bottleneck.backward(&grad);
        for i in (0..self.config.levels).rev() {
            grad = self.pools[i].backward(&grad);
            let g_skip = skip_grads[i].take().expect("one skip gradient per level");
            grad.add_assign(&g_skip);
            grad = self.enc[i].backward(&grad);
        }
        grad
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = Vec::new();
        for b in &mut self.enc {
            ps.extend(b.params_mut());
        }
        ps.extend(self.bottleneck.params_mut());
        for b in &mut self.dec {
            ps.extend(b.params_mut());
        }
        ps.extend(self.head.params_mut());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    fn tiny_net(seed: u64) -> UNet3d {
        UNet3d::new(UNetConfig {
            in_channels: 2,
            base_channels: 2,
            levels: 2,
            seed,
        })
    }

    #[test]
    fn output_is_single_channel_same_spatial_shape() {
        let mut net = tiny_net(0);
        for dims in [[4, 4, 2], [5, 3, 1], [7, 2, 3], [1, 1, 1], [9, 9, 4]] {
            let x = Tensor::zeros(&[2, dims[0], dims[1], dims[2]]);
            let y = net.forward(&x);
            assert_eq!(y.shape(), &[1, dims[0], dims[1], dims[2]], "dims {dims:?}");
            net.skips = None;
        }
    }

    #[test]
    fn predict_outputs_probabilities() {
        let mut net = tiny_net(1);
        let x = Initializer::new(2).uniform(&[2, 4, 5, 2], 1.0);
        let p = net.predict(&x);
        for &v in p.data() {
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn deeper_nets_still_handle_tiny_inputs() {
        let mut net = UNet3d::new(UNetConfig {
            in_channels: 3,
            base_channels: 2,
            levels: 3,
            seed: 4,
        });
        let x = Tensor::zeros(&[3, 3, 2, 1]);
        let y = net.forward(&x);
        assert_eq!(y.shape(), &[1, 3, 2, 1]);
    }

    #[test]
    fn same_seed_same_output() {
        let x = Initializer::new(11).uniform(&[2, 4, 4, 2], 1.0);
        let ya = tiny_net(42).forward(&x);
        let yb = tiny_net(42).forward(&x);
        let yc = tiny_net(43).forward(&x);
        assert_eq!(ya, yb);
        assert_ne!(ya, yc);
    }

    #[test]
    fn gradcheck_whole_network() {
        // Small input to keep the finite-difference loop cheap.
        let mut net = UNet3d::new(UNetConfig {
            in_channels: 2,
            base_channels: 1,
            levels: 1,
            seed: 3,
        });
        let x = Initializer::new(5).uniform(&[2, 2, 2, 1], 1.0);
        check_layer_gradients(&mut net, &x, 1e-2, 5e-2);
    }

    #[test]
    fn param_count_grows_with_width() {
        let mut small = tiny_net(0);
        let mut big = UNet3d::new(UNetConfig {
            in_channels: 2,
            base_channels: 4,
            levels: 2,
            seed: 0,
        });
        assert!(big.param_count() > small.param_count());
    }

    #[test]
    fn backward_returns_input_shaped_gradient() {
        let mut net = tiny_net(9);
        let x = Initializer::new(10).uniform(&[2, 5, 4, 2], 1.0);
        let y = net.forward(&x);
        let g = net.backward(&y);
        assert_eq!(g.shape(), x.shape());
    }
}
