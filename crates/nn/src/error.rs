//! Error types for the neural-network substrate.

use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced by the neural-network substrate.
#[derive(Debug)]
#[non_exhaustive]
pub enum NnError {
    /// Two tensors (or a tensor and an expectation) disagree on shape.
    ShapeMismatch {
        /// The shape that was expected.
        expected: Vec<usize>,
        /// The shape that was found.
        found: Vec<usize>,
    },
    /// Weight (de)serialization failed at the I/O level.
    Io(io::Error),
    /// A serialized model file is malformed or from an incompatible version.
    BadModelFile(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected:?}, found {found:?}")
            }
            NnError::Io(e) => write!(f, "model i/o failed: {e}"),
            NnError::BadModelFile(why) => write!(f, "bad model file: {why}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NnError {
    fn from(e: io::Error) -> Self {
        NnError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_shapes() {
        let e = NnError::ShapeMismatch {
            expected: vec![1, 2],
            found: vec![2, 1],
        };
        assert!(e.to_string().contains("[1, 2]"));
    }

    #[test]
    fn io_errors_convert() {
        let e = NnError::from(io::Error::new(io::ErrorKind::NotFound, "x"));
        assert!(matches!(e, NnError::Io(_)));
        assert!(Error::source(&e).is_some());
    }
}
