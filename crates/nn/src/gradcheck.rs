//! Finite-difference gradient checking for layers.
//!
//! Used extensively by the substrate's tests: every differentiable layer is
//! verified against central finite differences on both its input gradient
//! and its parameter gradients.

use crate::layer::Layer;
use crate::tensor::Tensor;

/// A scalar loss for gradient checking: `L = sum(y^2) / 2`, whose gradient
/// with respect to `y` is simply `y`.
fn loss_of(y: &Tensor) -> f64 {
    y.data()
        .iter()
        .map(|&v| (v as f64) * (v as f64))
        .sum::<f64>()
        / 2.0
}

/// Checks a layer's analytic gradients against central finite differences.
///
/// Uses the loss `L = ||forward(x)||² / 2`. Verifies the input gradient and
/// every parameter gradient to the given relative/absolute tolerance.
///
/// # Panics
///
/// Panics (test-style assertion) when a gradient mismatches.
pub fn check_layer_gradients<L: Layer>(layer: &mut L, x: &Tensor, eps: f32, tol: f32) {
    // Analytic pass.
    layer.zero_grad();
    let y = layer.forward(x);
    let grad_in = layer.backward(&y); // dL/dy = y for our loss

    // Input gradient check.
    let mut x_pert = x.clone();
    for i in 0..x.len() {
        let orig = x_pert.data()[i];
        x_pert.data_mut()[i] = orig + eps;
        let lp = loss_of(&layer.forward(&x_pert));
        x_pert.data_mut()[i] = orig - eps;
        let lm = loss_of(&layer.forward(&x_pert));
        x_pert.data_mut()[i] = orig;
        let numeric = ((lp - lm) / (2.0 * eps as f64)) as f32;
        let analytic = grad_in.data()[i];
        assert_close(analytic, numeric, tol, &format!("input grad [{i}]"));
    }

    // Parameter gradient check. Snapshot analytic grads first.
    let analytic_grads: Vec<Vec<f32>> = layer
        .params_mut()
        .iter()
        .map(|p| p.grad.data().to_vec())
        .collect();
    let n_params = analytic_grads.len();
    // Index-based loops: `layer.params_mut()` must be re-borrowed inside the
    // body between forward passes, so iterators cannot hold the params.
    #[allow(clippy::needless_range_loop)]
    for pi in 0..n_params {
        let plen = layer.params_mut()[pi].value.len();
        for i in 0..plen {
            let orig = layer.params_mut()[pi].value.data()[i];
            layer.params_mut()[pi].value.data_mut()[i] = orig + eps;
            let lp = loss_of(&layer.forward(x));
            layer.params_mut()[pi].value.data_mut()[i] = orig - eps;
            let lm = loss_of(&layer.forward(x));
            layer.params_mut()[pi].value.data_mut()[i] = orig;
            let numeric = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let analytic = analytic_grads[pi][i];
            assert_close(analytic, numeric, tol, &format!("param {pi} grad [{i}]"));
        }
    }
}

/// Asserts two gradient values agree within a mixed relative/absolute
/// tolerance.
fn assert_close(analytic: f32, numeric: f32, tol: f32, what: &str) {
    let denom = analytic.abs().max(numeric.abs()).max(1.0);
    let rel = (analytic - numeric).abs() / denom;
    assert!(
        rel <= tol,
        "{what}: analytic {analytic} vs numeric {numeric} (rel err {rel})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Param;

    /// y = k * x with a single scalar parameter k — trivially checkable.
    struct Scale {
        k: Param,
        cache: Option<Tensor>,
    }

    impl Layer for Scale {
        fn forward(&mut self, x: &Tensor) -> Tensor {
            self.cache = Some(x.clone());
            let k = self.k.value.data()[0];
            x.map(|v| k * v)
        }
        fn backward(&mut self, grad_out: &Tensor) -> Tensor {
            let x = self.cache.take().expect("forward first");
            let k = self.k.value.data()[0];
            let dk: f32 = grad_out
                .data()
                .iter()
                .zip(x.data())
                .map(|(&g, &xv)| g * xv)
                .sum();
            self.k.grad.data_mut()[0] += dk;
            grad_out.map(|g| k * g)
        }
        fn params_mut(&mut self) -> Vec<&mut Param> {
            vec![&mut self.k]
        }
    }

    #[test]
    fn gradcheck_accepts_correct_layer() {
        let mut layer = Scale {
            k: Param::new(Tensor::from_vec(&[1], vec![1.5]).unwrap()),
            cache: None,
        };
        let x = Tensor::from_vec(&[4], vec![0.3, -0.7, 1.1, 0.0]).unwrap();
        check_layer_gradients(&mut layer, &x, 1e-3, 1e-3);
    }

    #[test]
    #[should_panic(expected = "grad")]
    fn gradcheck_rejects_wrong_gradient() {
        /// Deliberately wrong backward: claims dL/dx = 0.
        struct Broken {
            cache: Option<Tensor>,
        }
        impl Layer for Broken {
            fn forward(&mut self, x: &Tensor) -> Tensor {
                self.cache = Some(x.clone());
                x.map(|v| 2.0 * v)
            }
            fn backward(&mut self, grad_out: &Tensor) -> Tensor {
                self.cache.take().expect("forward first");
                grad_out.map(|_| 0.0)
            }
        }
        let mut layer = Broken { cache: None };
        let x = Tensor::from_vec(&[2], vec![1.0, 2.0]).unwrap();
        check_layer_gradients(&mut layer, &x, 1e-3, 1e-3);
    }
}
