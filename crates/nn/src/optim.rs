//! First-order optimizers: SGD with momentum and Adam.
//!
//! Optimizers own per-parameter state vectors keyed by the *order* in which
//! a layer reports its parameters (which is deterministic for every layer in
//! this crate), so they can be applied to any [`Layer`].

use crate::layer::Layer;

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates SGD with learning rate `lr` and momentum coefficient
    /// `momentum` (0 disables momentum).
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Changes the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step using the parameters' accumulated gradients,
    /// then leaves the gradients untouched (call
    /// [`Layer::zero_grad`] before the next accumulation).
    pub fn step<L: Layer + ?Sized>(&mut self, layer: &mut L) {
        let mut params = layer.params_mut();
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
        }
        for (p, vel) in params.iter_mut().zip(&mut self.velocity) {
            for ((w, &g), v) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(vel.iter_mut())
            {
                *v = self.momentum * *v + g;
                *w -= self.lr * *v;
            }
        }
    }
}

/// The Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with the given learning rate and default betas
    /// `(0.9, 0.999)`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Changes the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Serializes the optimizer state (step count and moment vectors) so a
    /// training run can resume exactly where it stopped.
    ///
    /// # Errors
    ///
    /// Returns an error on write failure.
    pub fn save_state<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        writer.write_all(&self.t.to_le_bytes())?;
        writer.write_all(&(self.m.len() as u64).to_le_bytes())?;
        for vecs in [&self.m, &self.v] {
            for vec in vecs {
                writer.write_all(&(vec.len() as u64).to_le_bytes())?;
                for &x in vec {
                    writer.write_all(&x.to_le_bytes())?;
                }
            }
        }
        Ok(())
    }

    /// Restores state saved by [`Adam::save_state`].
    ///
    /// # Errors
    ///
    /// Returns an error on read failure or truncation.
    pub fn load_state<R: std::io::Read>(&mut self, mut reader: R) -> std::io::Result<()> {
        let mut b8 = [0u8; 8];
        reader.read_exact(&mut b8)?;
        self.t = u64::from_le_bytes(b8);
        reader.read_exact(&mut b8)?;
        let count = u64::from_le_bytes(b8) as usize;
        let read_group = |reader: &mut R| -> std::io::Result<Vec<Vec<f32>>> {
            let mut group = Vec::with_capacity(count);
            for _ in 0..count {
                let mut b8 = [0u8; 8];
                reader.read_exact(&mut b8)?;
                let len = u64::from_le_bytes(b8) as usize;
                let mut vec = vec![0.0f32; len];
                for x in &mut vec {
                    let mut b4 = [0u8; 4];
                    reader.read_exact(&mut b4)?;
                    *x = f32::from_le_bytes(b4);
                }
                group.push(vec);
            }
            Ok(group)
        };
        self.m = read_group(&mut reader)?;
        self.v = read_group(&mut reader)?;
        Ok(())
    }

    /// Applies one Adam step using the parameters' accumulated gradients.
    pub fn step<L: Layer + ?Sized>(&mut self, layer: &mut L) {
        let mut params = layer.params_mut();
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            for (((w, &g), mi), vi) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, Param};
    use crate::tensor::Tensor;

    /// A quadratic bowl: loss = (w - 3)^2 with dL/dw = 2(w - 3).
    struct Bowl {
        w: Param,
    }

    impl Bowl {
        fn new(start: f32) -> Self {
            Bowl {
                w: Param::new(Tensor::from_vec(&[1], vec![start]).unwrap()),
            }
        }
        fn loss(&self) -> f32 {
            let w = self.w.value.data()[0];
            (w - 3.0) * (w - 3.0)
        }
        fn compute_grad(&mut self) {
            let w = self.w.value.data()[0];
            self.w.grad.data_mut()[0] = 2.0 * (w - 3.0);
        }
    }

    impl Layer for Bowl {
        fn forward(&mut self, x: &Tensor) -> Tensor {
            x.clone()
        }
        fn backward(&mut self, g: &Tensor) -> Tensor {
            g.clone()
        }
        fn params_mut(&mut self) -> Vec<&mut Param> {
            vec![&mut self.w]
        }
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut bowl = Bowl::new(0.0);
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..100 {
            bowl.zero_grad();
            bowl.compute_grad();
            opt.step(&mut bowl);
        }
        assert!(bowl.loss() < 1e-6);
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let run = |momentum: f32| {
            let mut bowl = Bowl::new(0.0);
            let mut opt = Sgd::new(0.01, momentum);
            for _ in 0..60 {
                bowl.zero_grad();
                bowl.compute_grad();
                opt.step(&mut bowl);
            }
            bowl.loss()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut bowl = Bowl::new(10.0);
        let mut opt = Adam::new(0.3);
        for _ in 0..300 {
            bowl.zero_grad();
            bowl.compute_grad();
            opt.step(&mut bowl);
        }
        assert!(bowl.loss() < 1e-3, "loss {}", bowl.loss());
    }

    #[test]
    fn adam_state_round_trips_and_resumes_identically() {
        // Train two bowls identically; checkpoint one mid-way and resume.
        let run_straight = || {
            let mut bowl = Bowl::new(0.0);
            let mut opt = Adam::new(0.1);
            for _ in 0..20 {
                bowl.zero_grad();
                bowl.compute_grad();
                opt.step(&mut bowl);
            }
            bowl.w.value.data()[0]
        };
        let run_resumed = || {
            let mut bowl = Bowl::new(0.0);
            let mut opt = Adam::new(0.1);
            for _ in 0..10 {
                bowl.zero_grad();
                bowl.compute_grad();
                opt.step(&mut bowl);
            }
            let mut bytes = Vec::new();
            opt.save_state(&mut bytes).unwrap();
            let mut opt2 = Adam::new(0.1);
            opt2.load_state(bytes.as_slice()).unwrap();
            for _ in 0..10 {
                bowl.zero_grad();
                bowl.compute_grad();
                opt2.step(&mut bowl);
            }
            bowl.w.value.data()[0]
        };
        assert_eq!(run_straight(), run_resumed());
    }

    #[test]
    fn lr_is_adjustable() {
        let mut opt = Adam::new(0.1);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
        let mut sgd = Sgd::new(0.1, 0.0);
        sgd.set_lr(0.5);
        assert_eq!(sgd.lr(), 0.5);
    }
}
