//! The [`Layer`] trait and trainable [`Param`]eters.

use std::fmt;

use crate::tensor::Tensor;
use crate::workspace::NnWorkspace;

/// A trainable parameter: the value tensor and its accumulated gradient.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Creates a parameter with a zero gradient of matching shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }
}

impl fmt::Display for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "param {:?}", self.value.shape())
    }
}

/// A differentiable layer with cached activations.
///
/// The substrate uses define-by-run style with explicit caches: `forward`
/// stores whatever `backward` needs, and `backward` consumes the most recent
/// forward pass. Layers are therefore stateful and a `forward`/`backward`
/// pair must not interleave with other passes through the same layer.
pub trait Layer {
    /// Computes the layer output, caching intermediates for `backward`.
    fn forward(&mut self, x: &Tensor) -> Tensor;

    /// Propagates the output gradient to the input gradient, accumulating
    /// parameter gradients along the way.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `backward` is called without a matching
    /// preceding `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Workspace-threaded variant of [`Layer::forward`]: output (and any
    /// backward caches) come from the workspace pool, so steady-state calls
    /// allocate nothing. Results are bit-identical to `forward`.
    ///
    /// The default delegates to `forward`; optimized layers override this
    /// and implement `forward` as a thin wrapper over a fresh workspace.
    fn forward_in(&mut self, x: &Tensor, _ws: &mut NnWorkspace) -> Tensor {
        self.forward(x)
    }

    /// Workspace-threaded variant of [`Layer::backward`]. Takes the output
    /// gradient *by value* so implementations can work in place on it (the
    /// activation layers do) or recycle its storage into the pool.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called without a matching preceding
    /// [`Layer::forward_in`].
    fn backward_in(&mut self, grad_out: Tensor, ws: &mut NnWorkspace) -> Tensor {
        let g = self.backward(&grad_out);
        ws.free(grad_out);
        g
    }

    /// Batched variant of [`Layer::forward_in`] over rank-5
    /// `[C, B, d1, d2, d3]` activations (channel-major: channel `c` holds
    /// the `B` samples' volumes back to back, so convolutions flatten the
    /// trailing axes into one GEMM `N = B·d1·d2·d3` and a single weight
    /// load serves every sample). Per-sample results are bit-identical to
    /// running [`Layer::forward_in`] on each sample alone: batching only
    /// regroups *independent* output elements, never the terms of one
    /// element's sum.
    ///
    /// The default panics — every layer used inside the batched selector
    /// stack overrides it (a generic per-sample fallback would silently
    /// clobber single-sample caches and break `backward_batch_in`).
    fn forward_batch_in(&mut self, _x: &Tensor, _ws: &mut NnWorkspace) -> Tensor {
        // lint: panic-ok(deliberately loud default: every layer in the batched stack overrides it, and a silent per-sample fallback would clobber single-sample caches)
        unimplemented!("layer has no batched forward path")
    }

    /// Batched variant of [`Layer::backward_in`] consuming a rank-5
    /// `[C, B, d1, d2, d3]` output gradient. Parameter-gradient
    /// accumulation visits samples in ascending batch order, so every
    /// `+=` sequence per gradient element matches the sequential
    /// per-sample loop bit for bit.
    ///
    /// # Panics
    ///
    /// The default panics; implementations may panic if called without a
    /// matching preceding [`Layer::forward_batch_in`].
    fn backward_batch_in(&mut self, _grad_out: Tensor, _ws: &mut NnWorkspace) -> Tensor {
        unimplemented!("layer has no batched backward path")
    }

    /// The layer's trainable parameters (empty for activations and pooling).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of trainable scalars.
    fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.value.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_tracks_matching_grad_shape() {
        let mut p = Param::new(Tensor::zeros(&[3, 2]));
        assert_eq!(p.grad.shape(), &[3, 2]);
        p.grad.fill(1.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }
}
