//! Dense row-major `f32` tensors with dynamic shapes.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::NnError;

/// A dense row-major tensor of `f32` values.
///
/// The network code works mostly with 4-D tensors shaped
/// `[channels, d1, d2, d3]` where the spatial axes map to the Hanan graph's
/// `H`, `V` and `M` dimensions; the type itself supports any rank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape has a zero dimension (empty tensors are a bug in
    /// this codebase, not a use case).
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert!(
            n > 0 && !shape.is_empty(),
            "tensor shapes must be non-empty and positive, got {shape:?}"
        );
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor from raw data.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `data.len()` does not equal the
    /// product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self, NnError> {
        let n: usize = shape.iter().product();
        if n != data.len() || shape.is_empty() {
            return Err(NnError::ShapeMismatch {
                expected: shape.to_vec(),
                found: vec![data.len()],
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates a 4-D tensor filled by an index function `(c, x, y, z) -> v`.
    pub fn from_fn4<F: FnMut(usize, usize, usize, usize) -> f32>(
        shape: &[usize; 4],
        mut f: F,
    ) -> Self {
        let mut t = Tensor::zeros(shape);
        let [c, d1, d2, d3] = *shape;
        let mut i = 0;
        for ci in 0..c {
            for x in 0..d1 {
                for y in 0..d2 {
                    for z in 0..d3 {
                        t.data[i] = f(ci, x, y, z);
                        i += 1;
                    }
                }
            }
        }
        t
    }

    /// An empty storage husk for the workspace pool. Crate-internal: it
    /// violates the non-empty invariant only transiently, until the pool
    /// calls [`Tensor::refit`].
    pub(crate) fn pool_seed() -> Tensor {
        // lint: alloc-ok(capacity-0 husks touch no heap; refit reuses whatever storage the pool hands back)
        Tensor {
            shape: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Reshapes recycled storage in place to a zeroed tensor of `shape` —
    /// both the shape and data vectors reuse their existing capacity, so a
    /// warm workspace pool performs no heap traffic here.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub(crate) fn refit(&mut self, shape: &[usize]) {
        let n: usize = shape.iter().product();
        assert!(
            n > 0 && !shape.is_empty(),
            "tensor shapes must be non-empty and positive, got {shape:?}"
        );
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self.data.clear();
        self.data.resize(n, 0.0);
    }

    /// Stacks same-shape rank-4 `[C, d1, d2, d3]` tensors into the batched
    /// rank-5 layout `[C, B, d1, d2, d3]`: channel `c` holds the `B`
    /// samples' `c`-th volumes back to back, so a GEMM over the flattened
    /// `[C, B·d1·d2·d3]` view serves every sample with one weight load.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, any tensor is not rank 4, or shapes
    /// disagree.
    pub fn stack_batch(samples: &[&Tensor]) -> Tensor {
        assert!(!samples.is_empty(), "stack_batch needs at least one sample");
        let s = samples[0].shape();
        assert_eq!(s.len(), 4, "stack_batch expects rank-4 samples");
        let bsz = samples.len();
        let (c, d1, d2, d3) = (s[0], s[1], s[2], s[3]);
        let spatial = d1 * d2 * d3;
        let mut out = Tensor::zeros(&[c, bsz, d1, d2, d3]);
        for (b, t) in samples.iter().enumerate() {
            assert_eq!(t.shape(), s, "stack_batch shape mismatch at sample {b}");
            for ci in 0..c {
                let src = &t.data[ci * spatial..(ci + 1) * spatial];
                out.data[(ci * bsz + b) * spatial..][..spatial].copy_from_slice(src);
            }
        }
        out
    }

    /// Extracts sample `b` of a batched rank-5 `[C, B, d1, d2, d3]` tensor
    /// as a rank-4 `[C, d1, d2, d3]` tensor — the inverse of
    /// [`Tensor::stack_batch`].
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 5 or `b` is out of range.
    pub fn unstack_sample(&self, b: usize) -> Tensor {
        assert_eq!(self.shape.len(), 5, "unstack_sample expects rank 5");
        let (c, bsz, d1, d2, d3) = (
            self.shape[0],
            self.shape[1],
            self.shape[2],
            self.shape[3],
            self.shape[4],
        );
        assert!(b < bsz, "sample index {b} out of range ({bsz})");
        let spatial = d1 * d2 * d3;
        let mut out = Tensor::zeros(&[c, d1, d2, d3]);
        for ci in 0..c {
            let src = &self.data[(ci * bsz + b) * spatial..][..spatial];
            out.data[ci * spatial..(ci + 1) * spatial].copy_from_slice(src);
        }
        out
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, yielding its raw data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Linear index of a 4-D position. The tensor must be 4-D.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on out-of-range indices or wrong rank.
    #[inline]
    pub fn idx4(&self, c: usize, x: usize, y: usize, z: usize) -> usize {
        debug_assert_eq!(self.shape.len(), 4);
        debug_assert!(
            c < self.shape[0] && x < self.shape[1] && y < self.shape[2] && z < self.shape[3]
        );
        ((c * self.shape[1] + x) * self.shape[2] + y) * self.shape[3] + z
    }

    /// Reads a 4-D element.
    #[inline]
    pub fn at4(&self, c: usize, x: usize, y: usize, z: usize) -> f32 {
        self.data[self.idx4(c, x, y, z)]
    }

    /// Writes a 4-D element.
    #[inline]
    pub fn set4(&mut self, c: usize, x: usize, y: usize, z: usize, v: f32) {
        let i = self.idx4(c, x, y, z);
        self.data[i] = v;
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }

    /// Elementwise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaling.
    pub fn scale(&mut self, k: f32) {
        for a in &mut self.data {
            *a *= k;
        }
    }

    /// Elementwise map into a new tensor.
    pub fn map<F: FnMut(f32) -> f32>(&self, mut f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum absolute element (0 for all-zero tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Concatenates two 4-D tensors along the channel axis; the spatial
    /// shapes must agree.
    ///
    /// # Panics
    ///
    /// Panics on rank or spatial-shape mismatch.
    pub fn concat_channels(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 4);
        assert_eq!(&self.shape[1..], &other.shape[1..], "spatial mismatch");
        let mut out = Tensor::zeros(&[
            self.shape[0] + other.shape[0],
            self.shape[1],
            self.shape[2],
            self.shape[3],
        ]);
        out.data[..self.data.len()].copy_from_slice(&self.data);
        out.data[self.data.len()..].copy_from_slice(&other.data);
        out
    }

    /// Splits a 4-D tensor along the channel axis into `(first, rest)` where
    /// `first` has `c0` channels — the inverse of
    /// [`Tensor::concat_channels`].
    ///
    /// # Panics
    ///
    /// Panics if `c0` exceeds the channel count.
    pub fn split_channels(&self, c0: usize) -> (Tensor, Tensor) {
        assert_eq!(self.shape.len(), 4);
        assert!(c0 < self.shape[0], "split point must leave both halves");
        let spatial: usize = self.shape[1..].iter().product();
        let first = Tensor {
            shape: vec![c0, self.shape[1], self.shape[2], self.shape[3]],
            data: self.data[..c0 * spatial].to_vec(),
        };
        let rest = Tensor {
            shape: vec![
                self.shape[0] - c0,
                self.shape[1],
                self.shape[2],
                self.shape[3],
            ],
            data: self.data[c0 * spatial..].to_vec(),
        };
        (first, rest)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tensor {:?} ({} elements)", self.shape, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4, 5]);
        assert_eq!(t.shape(), &[2, 3, 4, 5]);
        assert_eq!(t.len(), 120);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_dim_panics() {
        Tensor::zeros(&[2, 0, 3]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 4]).is_ok());
        assert!(matches!(
            Tensor::from_vec(&[2, 2], vec![1.0; 5]),
            Err(NnError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn idx4_is_row_major() {
        let t = Tensor::from_fn4(&[2, 2, 2, 2], |c, x, y, z| {
            (c * 1000 + x * 100 + y * 10 + z) as f32
        });
        assert_eq!(t.at4(0, 0, 0, 1), 1.0);
        assert_eq!(t.at4(0, 0, 1, 0), 10.0);
        assert_eq!(t.at4(1, 1, 1, 1), 1111.0);
        // Row-major: last axis contiguous.
        assert_eq!(t.data()[1], 1.0);
    }

    #[test]
    fn concat_then_split_round_trips() {
        let a = Tensor::from_fn4(&[2, 2, 3, 1], |c, x, y, _| (c + x + y) as f32);
        let b = Tensor::from_fn4(&[3, 2, 3, 1], |c, x, y, _| (10 * (c + 1) + x + y) as f32);
        let cat = a.concat_channels(&b);
        assert_eq!(cat.shape(), &[5, 2, 3, 1]);
        let (a2, b2) = cat.split_channels(2);
        assert_eq!(a, a2);
        assert_eq!(b, b2);
    }

    #[test]
    fn stack_batch_is_channel_major_and_round_trips() {
        let a = Tensor::from_fn4(&[2, 2, 1, 3], |c, x, _, z| (c * 100 + x * 10 + z) as f32);
        let b = Tensor::from_fn4(&[2, 2, 1, 3], |c, x, _, z| -((c * 100 + x * 10 + z) as f32));
        let batch = Tensor::stack_batch(&[&a, &b]);
        assert_eq!(batch.shape(), &[2, 2, 2, 1, 3]);
        // Channel 0 holds sample 0's then sample 1's channel-0 volume.
        let spatial = 6;
        assert_eq!(&batch.data()[..spatial], &a.data()[..spatial]);
        assert_eq!(&batch.data()[spatial..2 * spatial], &b.data()[..spatial]);
        assert_eq!(batch.unstack_sample(0), a);
        assert_eq!(batch.unstack_sample(1), b);
    }

    #[test]
    fn arithmetic_helpers() {
        let mut t = Tensor::from_vec(&[3], vec![1.0, -2.0, 3.0]).unwrap();
        let u = Tensor::from_vec(&[3], vec![1.0, 1.0, 1.0]).unwrap();
        t.add_assign(&u);
        assert_eq!(t.data(), &[2.0, -1.0, 4.0]);
        t.scale(0.5);
        assert_eq!(t.data(), &[1.0, -0.5, 2.0]);
        assert_eq!(t.max_abs(), 2.0);
        let m = t.map(|v| v * v);
        assert_eq!(m.data(), &[1.0, 0.25, 4.0]);
    }
}
