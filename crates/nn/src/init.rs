//! Weight initialization.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tensor::Tensor;

/// A seeded weight initializer (He/Kaiming-style uniform).
#[derive(Debug)]
pub struct Initializer {
    rng: StdRng,
}

impl Initializer {
    /// Creates an initializer from a seed.
    pub fn new(seed: u64) -> Self {
        Initializer {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// He-uniform initialization for a convolution weight of the given
    /// shape, using `fan_in` input connections per output.
    pub fn he_uniform(&mut self, shape: &[usize], fan_in: usize) -> Tensor {
        let bound = (6.0 / fan_in.max(1) as f32).sqrt();
        let mut t = Tensor::zeros(shape);
        for v in t.data_mut() {
            *v = self.rng.gen_range(-bound..bound);
        }
        t
    }

    /// Uniform initialization in `[-bound, bound]`.
    pub fn uniform(&mut self, shape: &[usize], bound: f32) -> Tensor {
        let mut t = Tensor::zeros(shape);
        for v in t.data_mut() {
            *v = self.rng.gen_range(-bound..=bound);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_uniform_is_bounded_and_seeded() {
        let mut a = Initializer::new(1);
        let mut b = Initializer::new(1);
        let ta = a.he_uniform(&[4, 4], 16);
        let tb = b.he_uniform(&[4, 4], 16);
        assert_eq!(ta, tb, "same seed gives same weights");
        let bound = (6.0f32 / 16.0).sqrt();
        for &v in ta.data() {
            assert!(v.abs() <= bound);
        }
        // Not all identical.
        assert!(ta.data().iter().any(|&v| v != ta.data()[0]));
    }

    #[test]
    fn different_seeds_differ() {
        let ta = Initializer::new(1).he_uniform(&[8], 8);
        let tb = Initializer::new(2).he_uniform(&[8], 8);
        assert_ne!(ta, tb);
    }
}
