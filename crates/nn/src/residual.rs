//! 3D convolutional residual blocks (He et al., as adopted by the paper's
//! architecture: "3D convolutional residual blocks", Section 3.3).

use crate::activation::Relu;
use crate::conv3d::Conv3d;
use crate::init::Initializer;
use crate::layer::{Layer, Param};
use crate::norm::GroupNorm;
use crate::tensor::Tensor;
use crate::workspace::NnWorkspace;

/// A pre-activation-free residual block:
/// `y = relu(conv2(norm?(relu(norm?(conv1(x))))) + proj(x))`,
/// where `proj` is the identity when channel counts match and a `1×1×1`
/// convolution otherwise, and the optional [`GroupNorm`]s are inserted by
/// [`ResidualBlock::new_normed`].
#[derive(Debug, Clone)]
pub struct ResidualBlock {
    conv1: Conv3d,
    norm1: Option<GroupNorm>,
    relu1: Relu,
    conv2: Conv3d,
    norm2: Option<GroupNorm>,
    relu_out: Relu,
    projection: Option<Conv3d>,
    forward_ran: bool,
}

impl ResidualBlock {
    /// Creates a residual block mapping `in_c` to `out_c` channels with
    /// `k × k × k` kernels (the paper uses `k = 3`).
    pub fn new(in_c: usize, out_c: usize, k: usize, init: &mut Initializer) -> Self {
        ResidualBlock {
            conv1: Conv3d::new(in_c, out_c, k, init),
            norm1: None,
            relu1: Relu::new(),
            conv2: Conv3d::new(out_c, out_c, k, init),
            norm2: None,
            relu_out: Relu::new(),
            projection: (in_c != out_c).then(|| Conv3d::new(in_c, out_c, 1, init)),
            forward_ran: false,
        }
    }

    /// Creates a residual block with a [`GroupNorm`] after each convolution.
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not divide `out_c`.
    pub fn new_normed(
        in_c: usize,
        out_c: usize,
        k: usize,
        groups: usize,
        init: &mut Initializer,
    ) -> Self {
        ResidualBlock {
            norm1: Some(GroupNorm::new(out_c, groups)),
            norm2: Some(GroupNorm::new(out_c, groups)),
            ..ResidualBlock::new(in_c, out_c, k, init)
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.conv2.out_channels()
    }

    /// Cache-free `&self` forward for the shared-selector inference path
    /// (rank-4 single-sample only; the ReLUs clamp inline — the same
    /// `max(0, ·)` per element as `forward_owned`, without masks).
    /// Bit-identical to [`Layer::forward_in`].
    pub fn infer_in(&self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        let mut h = self.conv1.infer_in(x, ws);
        if let Some(n) = &self.norm1 {
            let y = n.infer_in(&h, ws);
            ws.free(h);
            h = y;
        }
        for v in h.data_mut() {
            *v = v.max(0.0);
        }
        let y = self.conv2.infer_in(&h, ws);
        ws.free(h);
        h = y;
        if let Some(n) = &self.norm2 {
            let y = n.infer_in(&h, ws);
            ws.free(h);
            h = y;
        }
        let mut sum = h;
        match &self.projection {
            Some(proj) => {
                let skip = proj.infer_in(x, ws);
                sum.add_assign(&skip);
                ws.free(skip);
            }
            None => sum.add_assign(x),
        }
        for v in sum.data_mut() {
            *v = v.max(0.0);
        }
        sum
    }

    /// Routes every convolution through the naive reference loops
    /// (bit-identity oracle; see [`Conv3d::set_naive`]).
    #[cfg(any(test, feature = "naive-ref"))]
    pub fn set_naive(&mut self, on: bool) {
        self.conv1.set_naive(on);
        self.conv2.set_naive(on);
        if let Some(proj) = &mut self.projection {
            proj.set_naive(on);
        }
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut ws = NnWorkspace::new();
        self.forward_in(x, &mut ws)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = NnWorkspace::new();
        let g = ws.alloc_copy(grad_out);
        self.backward_in(g, &mut ws)
    }

    fn forward_in(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        let mut h = self.conv1.forward_in(x, ws);
        if let Some(n) = &mut self.norm1 {
            let y = n.forward_in(&h, ws);
            ws.free(h);
            h = y;
        }
        h = self.relu1.forward_owned(h, ws);
        let y = self.conv2.forward_in(&h, ws);
        ws.free(h);
        h = y;
        if let Some(n) = &mut self.norm2 {
            let y = n.forward_in(&h, ws);
            ws.free(h);
            h = y;
        }
        let mut sum = h;
        match &mut self.projection {
            Some(proj) => {
                let skip = proj.forward_in(x, ws);
                sum.add_assign(&skip);
                ws.free(skip);
            }
            None => sum.add_assign(x),
        }
        self.forward_ran = true;
        self.relu_out.forward_owned(sum, ws)
    }

    fn backward_in(&mut self, grad_out: Tensor, ws: &mut NnWorkspace) -> Tensor {
        assert!(self.forward_ran, "residual backward without forward");
        self.forward_ran = false;
        let grad_sum = self.relu_out.backward_in(grad_out, ws);
        // Main branch.
        let mut g = ws.alloc_copy(&grad_sum);
        if let Some(n) = &mut self.norm2 {
            g = n.backward_in(g, ws);
        }
        g = self.conv2.backward_in(g, ws);
        g = self.relu1.backward_in(g, ws);
        if let Some(n) = &mut self.norm1 {
            g = n.backward_in(g, ws);
        }
        let mut g_main = self.conv1.backward_in(g, ws);
        // Skip branch.
        let g_skip = match &mut self.projection {
            Some(proj) => proj.backward_in(grad_sum, ws),
            None => grad_sum,
        };
        g_main.add_assign(&g_skip);
        ws.free(g_skip);
        g_main
    }

    // Batched passes: the same dataflow with every sublayer's batched
    // variant (elementwise add/ReLU are layout-agnostic).
    fn forward_batch_in(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        let mut h = self.conv1.forward_batch_in(x, ws);
        if let Some(n) = &mut self.norm1 {
            let y = n.forward_batch_in(&h, ws);
            ws.free(h);
            h = y;
        }
        h = self.relu1.forward_owned(h, ws);
        let y = self.conv2.forward_batch_in(&h, ws);
        ws.free(h);
        h = y;
        if let Some(n) = &mut self.norm2 {
            let y = n.forward_batch_in(&h, ws);
            ws.free(h);
            h = y;
        }
        let mut sum = h;
        match &mut self.projection {
            Some(proj) => {
                let skip = proj.forward_batch_in(x, ws);
                sum.add_assign(&skip);
                ws.free(skip);
            }
            None => sum.add_assign(x),
        }
        self.forward_ran = true;
        self.relu_out.forward_owned(sum, ws)
    }

    fn backward_batch_in(&mut self, grad_out: Tensor, ws: &mut NnWorkspace) -> Tensor {
        assert!(self.forward_ran, "residual backward without forward");
        self.forward_ran = false;
        let grad_sum = self.relu_out.backward_in(grad_out, ws);
        let mut g = ws.alloc_copy(&grad_sum);
        if let Some(n) = &mut self.norm2 {
            g = n.backward_batch_in(g, ws);
        }
        g = self.conv2.backward_batch_in(g, ws);
        g = self.relu1.backward_in(g, ws);
        if let Some(n) = &mut self.norm1 {
            g = n.backward_batch_in(g, ws);
        }
        let mut g_main = self.conv1.backward_batch_in(g, ws);
        let g_skip = match &mut self.projection {
            Some(proj) => proj.backward_batch_in(grad_sum, ws),
            None => grad_sum,
        };
        g_main.add_assign(&g_skip);
        ws.free(g_skip);
        g_main
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = self.conv1.params_mut();
        if let Some(n) = &mut self.norm1 {
            ps.extend(n.params_mut());
        }
        ps.extend(self.conv2.params_mut());
        if let Some(n) = &mut self.norm2 {
            ps.extend(n.params_mut());
        }
        if let Some(proj) = &mut self.projection {
            ps.extend(proj.params_mut());
        }
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn same_channel_block_has_no_projection() {
        let mut b = ResidualBlock::new(3, 3, 3, &mut Initializer::new(0));
        assert_eq!(b.params_mut().len(), 4); // two convs x (w, b)
        let x = Tensor::zeros(&[3, 2, 2, 2]);
        assert_eq!(b.forward(&x).shape(), &[3, 2, 2, 2]);
    }

    #[test]
    fn channel_change_uses_projection() {
        let mut b = ResidualBlock::new(2, 5, 3, &mut Initializer::new(0));
        assert_eq!(b.params_mut().len(), 6);
        let x = Tensor::zeros(&[2, 3, 2, 1]);
        assert_eq!(b.forward(&x).shape(), &[5, 3, 2, 1]);
    }

    #[test]
    fn zero_weights_pass_skip_through_relu() {
        let mut b = ResidualBlock::new(2, 2, 3, &mut Initializer::new(0));
        for p in b.params_mut() {
            p.value.fill(0.0);
        }
        let x = Tensor::from_fn4(&[2, 2, 2, 1], |c, a, bb, _| (c + a + bb) as f32 - 1.0);
        let y = b.forward(&x);
        // With zero main branch and identity skip, y = relu(x).
        for (yv, xv) in y.data().iter().zip(x.data()) {
            assert_eq!(*yv, xv.max(0.0));
        }
    }

    #[test]
    fn gradcheck_identity_skip() {
        let mut b = ResidualBlock::new(2, 2, 3, &mut Initializer::new(5));
        let x = Initializer::new(6).uniform(&[2, 2, 2, 2], 1.0);
        check_layer_gradients(&mut b, &x, 1e-2, 3e-2);
    }

    #[test]
    fn gradcheck_normed_block() {
        let mut b = ResidualBlock::new_normed(2, 4, 3, 2, &mut Initializer::new(11));
        let x = Initializer::new(12).uniform(&[2, 2, 2, 1], 1.0);
        check_layer_gradients(&mut b, &x, 1e-2, 4e-2);
    }

    fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for (i, (p, q)) in a.data().iter().zip(b.data()).enumerate() {
            assert_eq!(p.to_bits(), q.to_bits(), "{what}: element {i}: {p} vs {q}");
        }
    }

    /// Batched-vs-sequential bit identity through a **normed** block — the
    /// U-Net itself carries no GroupNorms, so this is where the batched
    /// normalization path gets its per-sample-identity coverage (per-sample
    /// statistics, strided accumulation order, parameter gradients).
    #[test]
    fn normed_block_batched_matches_sequential_bitwise() {
        for &bsz in &[1usize, 3] {
            let proto = ResidualBlock::new_normed(2, 4, 3, 2, &mut Initializer::new(21));
            let xs: Vec<Tensor> = (0..bsz)
                .map(|b| Initializer::new(30 + b as u64).uniform(&[2, 3, 2, 2], 1.0))
                .collect();
            let gs: Vec<Tensor> = (0..bsz)
                .map(|b| Initializer::new(40 + b as u64).uniform(&[4, 3, 2, 2], 1.0))
                .collect();

            let mut seq = proto.clone();
            let mut ws = NnWorkspace::new();
            let mut ys = Vec::new();
            let mut gis = Vec::new();
            for b in 0..bsz {
                ys.push(seq.forward_in(&xs[b], &mut ws));
                gis.push(seq.backward_in(ws.alloc_copy(&gs[b]), &mut ws));
            }

            let mut bat = proto.clone();
            let mut wsb = NnWorkspace::new();
            let x5 = Tensor::stack_batch(&xs.iter().collect::<Vec<_>>());
            let g5 = Tensor::stack_batch(&gs.iter().collect::<Vec<_>>());
            let y5 = bat.forward_batch_in(&x5, &mut wsb);
            let gi5 = bat.backward_batch_in(wsb.alloc_copy(&g5), &mut wsb);

            for b in 0..bsz {
                assert_bits_eq(&y5.unstack_sample(b), &ys[b], &format!("B{bsz} y[{b}]"));
                assert_bits_eq(
                    &gi5.unstack_sample(b),
                    &gis[b],
                    &format!("B{bsz} grad_in[{b}]"),
                );
            }
            for (pb, ps) in bat.params_mut().iter().zip(seq.params_mut().iter()) {
                assert_bits_eq(&pb.grad, &ps.grad, &format!("B{bsz} param grad"));
            }
        }
    }

    /// The `&self` inference path through a normed, projected block must
    /// match the training forward bit for bit.
    #[test]
    fn infer_in_matches_forward_bitwise() {
        let proto = ResidualBlock::new_normed(2, 4, 3, 2, &mut Initializer::new(51));
        let x = Initializer::new(52).uniform(&[2, 3, 2, 2], 1.0);
        let mut owned = proto.clone();
        let y_ref = owned.forward(&x);
        let mut ws = NnWorkspace::new();
        let y = proto.infer_in(&x, &mut ws);
        assert_bits_eq(&y, &y_ref, "shared inference");
    }

    #[test]
    fn gradcheck_projected_skip() {
        let mut b = ResidualBlock::new(2, 3, 1, &mut Initializer::new(8));
        let x = Initializer::new(9).uniform(&[2, 2, 2, 1], 1.0);
        check_layer_gradients(&mut b, &x, 1e-2, 3e-2);
    }
}
