//! 3D convolutional residual blocks (He et al., as adopted by the paper's
//! architecture: "3D convolutional residual blocks", Section 3.3).

use crate::activation::Relu;
use crate::conv3d::Conv3d;
use crate::init::Initializer;
use crate::layer::{Layer, Param};
use crate::norm::GroupNorm;
use crate::tensor::Tensor;

/// A pre-activation-free residual block:
/// `y = relu(conv2(norm?(relu(norm?(conv1(x))))) + proj(x))`,
/// where `proj` is the identity when channel counts match and a `1×1×1`
/// convolution otherwise, and the optional [`GroupNorm`]s are inserted by
/// [`ResidualBlock::new_normed`].
#[derive(Debug, Clone)]
pub struct ResidualBlock {
    conv1: Conv3d,
    norm1: Option<GroupNorm>,
    relu1: Relu,
    conv2: Conv3d,
    norm2: Option<GroupNorm>,
    relu_out: Relu,
    projection: Option<Conv3d>,
    cache_x: Option<Tensor>,
}

impl ResidualBlock {
    /// Creates a residual block mapping `in_c` to `out_c` channels with
    /// `k × k × k` kernels (the paper uses `k = 3`).
    pub fn new(in_c: usize, out_c: usize, k: usize, init: &mut Initializer) -> Self {
        ResidualBlock {
            conv1: Conv3d::new(in_c, out_c, k, init),
            norm1: None,
            relu1: Relu::new(),
            conv2: Conv3d::new(out_c, out_c, k, init),
            norm2: None,
            relu_out: Relu::new(),
            projection: (in_c != out_c).then(|| Conv3d::new(in_c, out_c, 1, init)),
            cache_x: None,
        }
    }

    /// Creates a residual block with a [`GroupNorm`] after each convolution.
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not divide `out_c`.
    pub fn new_normed(
        in_c: usize,
        out_c: usize,
        k: usize,
        groups: usize,
        init: &mut Initializer,
    ) -> Self {
        ResidualBlock {
            norm1: Some(GroupNorm::new(out_c, groups)),
            norm2: Some(GroupNorm::new(out_c, groups)),
            ..ResidualBlock::new(in_c, out_c, k, init)
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.conv2.out_channels()
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut h = self.conv1.forward(x);
        if let Some(n) = &mut self.norm1 {
            h = n.forward(&h);
        }
        h = self.relu1.forward(&h);
        h = self.conv2.forward(&h);
        if let Some(n) = &mut self.norm2 {
            h = n.forward(&h);
        }
        let main = h;
        let skip = match &mut self.projection {
            Some(proj) => proj.forward(x),
            None => x.clone(),
        };
        let mut sum = main;
        sum.add_assign(&skip);
        self.cache_x = Some(x.clone());
        self.relu_out.forward(&sum)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.cache_x
            .take()
            .expect("residual backward without forward");
        let grad_sum = self.relu_out.backward(grad_out);
        // Main branch.
        let mut g = grad_sum.clone();
        if let Some(n) = &mut self.norm2 {
            g = n.backward(&g);
        }
        g = self.conv2.backward(&g);
        g = self.relu1.backward(&g);
        if let Some(n) = &mut self.norm1 {
            g = n.backward(&g);
        }
        let g_main = self.conv1.backward(&g);
        // Skip branch.
        let g_skip = match &mut self.projection {
            Some(proj) => proj.backward(&grad_sum),
            None => grad_sum,
        };
        let mut g = g_main;
        g.add_assign(&g_skip);
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = self.conv1.params_mut();
        if let Some(n) = &mut self.norm1 {
            ps.extend(n.params_mut());
        }
        ps.extend(self.conv2.params_mut());
        if let Some(n) = &mut self.norm2 {
            ps.extend(n.params_mut());
        }
        if let Some(proj) = &mut self.projection {
            ps.extend(proj.params_mut());
        }
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn same_channel_block_has_no_projection() {
        let mut b = ResidualBlock::new(3, 3, 3, &mut Initializer::new(0));
        assert_eq!(b.params_mut().len(), 4); // two convs x (w, b)
        let x = Tensor::zeros(&[3, 2, 2, 2]);
        assert_eq!(b.forward(&x).shape(), &[3, 2, 2, 2]);
    }

    #[test]
    fn channel_change_uses_projection() {
        let mut b = ResidualBlock::new(2, 5, 3, &mut Initializer::new(0));
        assert_eq!(b.params_mut().len(), 6);
        let x = Tensor::zeros(&[2, 3, 2, 1]);
        assert_eq!(b.forward(&x).shape(), &[5, 3, 2, 1]);
    }

    #[test]
    fn zero_weights_pass_skip_through_relu() {
        let mut b = ResidualBlock::new(2, 2, 3, &mut Initializer::new(0));
        for p in b.params_mut() {
            p.value.fill(0.0);
        }
        let x = Tensor::from_fn4(&[2, 2, 2, 1], |c, a, bb, _| (c + a + bb) as f32 - 1.0);
        let y = b.forward(&x);
        // With zero main branch and identity skip, y = relu(x).
        for (yv, xv) in y.data().iter().zip(x.data()) {
            assert_eq!(*yv, xv.max(0.0));
        }
    }

    #[test]
    fn gradcheck_identity_skip() {
        let mut b = ResidualBlock::new(2, 2, 3, &mut Initializer::new(5));
        let x = Initializer::new(6).uniform(&[2, 2, 2, 2], 1.0);
        check_layer_gradients(&mut b, &x, 1e-2, 3e-2);
    }

    #[test]
    fn gradcheck_normed_block() {
        let mut b = ResidualBlock::new_normed(2, 4, 3, 2, &mut Initializer::new(11));
        let x = Initializer::new(12).uniform(&[2, 2, 2, 1], 1.0);
        check_layer_gradients(&mut b, &x, 1e-2, 4e-2);
    }

    #[test]
    fn gradcheck_projected_skip() {
        let mut b = ResidualBlock::new(2, 3, 1, &mut Initializer::new(8));
        let x = Initializer::new(9).uniform(&[2, 2, 2, 1], 1.0);
        check_layer_gradients(&mut b, &x, 1e-2, 3e-2);
    }
}
