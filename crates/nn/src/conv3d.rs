//! 3D convolution with same-padding and full backpropagation.

use crate::init::Initializer;
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// A 3D convolution layer: weight `[out_c, in_c, k, k, k]`, bias `[out_c]`,
/// stride 1, zero same-padding `k / 2` (so spatial dimensions are
/// preserved — the property that keeps the U-Net image-in-image-out for
/// arbitrary sizes).
///
/// The paper's network uses `3×3×3` kernels throughout plus `1×1×1` output
/// heads; both are supported (any odd `k`).
#[derive(Debug, Clone, PartialEq)]
pub struct Conv3d {
    in_c: usize,
    out_c: usize,
    k: usize,
    weight: Param,
    bias: Param,
    cache_input: Option<Tensor>,
}

impl Conv3d {
    /// Creates a convolution with He-uniform weights.
    ///
    /// # Panics
    ///
    /// Panics if `k` is even (same-padding needs odd kernels) or a channel
    /// count is zero.
    pub fn new(in_c: usize, out_c: usize, k: usize, init: &mut Initializer) -> Self {
        assert!(k % 2 == 1, "same-padding conv needs an odd kernel, got {k}");
        assert!(in_c > 0 && out_c > 0);
        let fan_in = in_c * k * k * k;
        let weight = Param::new(init.he_uniform(&[out_c, in_c, k, k, k], fan_in));
        let bias = Param::new(Tensor::zeros(&[out_c]));
        Conv3d {
            in_c,
            out_c,
            k,
            weight,
            bias,
            cache_input: None,
        }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_c
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.k
    }
}

/// The overlap of a length-`d` axis with a kernel tap at offset `c`
/// (padding `p`): output indices `z` for which `z + c - p` is a valid input
/// index. Returns `(z_start, z_end, input_start)`.
#[inline]
fn tap_range(d: usize, c: usize, p: usize) -> (usize, usize, usize) {
    let z0 = p.saturating_sub(c);
    let z1 = (d + p).saturating_sub(c).min(d);
    let i0 = z0 + c - p;
    (z0, z1.max(z0), i0)
}

impl Layer for Conv3d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "conv3d expects [c, d1, d2, d3]");
        assert_eq!(shape[0], self.in_c, "conv3d channel mismatch");
        let (d1, d2, d3) = (shape[1], shape[2], shape[3]);
        let k = self.k;
        let p = k / 2;
        let mut out = Tensor::zeros(&[self.out_c, d1, d2, d3]);
        let bias = self.bias.value.data().to_vec();
        let w = self.weight.value.data();
        let xin = x.data();
        let out_data = out.data_mut();
        // The z axis is contiguous: accumulate per (oc, x, y) output row
        // with shifted-slice AXPYs, which the compiler vectorizes.
        #[allow(clippy::needless_range_loop)] // `oc` drives offset math, not just `bias[oc]`
        for oc in 0..self.out_c {
            for x1 in 0..d1 {
                for y in 0..d2 {
                    let o_base = ((oc * d1 + x1) * d2 + y) * d3;
                    let out_row = &mut out_data[o_base..o_base + d3];
                    out_row.fill(bias[oc]);
                    for ic in 0..self.in_c {
                        for a in 0..k {
                            let sx = x1 + a;
                            if sx < p || sx - p >= d1 {
                                continue;
                            }
                            let ix = sx - p;
                            for b in 0..k {
                                let sy = y + b;
                                if sy < p || sy - p >= d2 {
                                    continue;
                                }
                                let iy = sy - p;
                                let i_base = ((ic * d1 + ix) * d2 + iy) * d3;
                                let w_base = (((oc * self.in_c + ic) * k + a) * k + b) * k;
                                for c in 0..k {
                                    let (z0, z1, i0) = tap_range(d3, c, p);
                                    if z0 >= z1 {
                                        continue;
                                    }
                                    let wv = w[w_base + c];
                                    let src = &xin[i_base + i0..i_base + i0 + (z1 - z0)];
                                    let dst = &mut out_row[z0..z1];
                                    for (d, s) in dst.iter_mut().zip(src) {
                                        *d += wv * s;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        self.cache_input = Some(x.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cache_input
            .take()
            .expect("conv3d backward without forward");
        let shape = x.shape();
        let (d1, d2, d3) = (shape[1], shape[2], shape[3]);
        assert_eq!(grad_out.shape(), &[self.out_c, d1, d2, d3]);
        let k = self.k;
        let p = k / 2;
        let mut grad_in = Tensor::zeros(shape);
        let g = grad_out.data();
        let xin = x.data();
        let w = self.weight.value.data();
        let gw = self.weight.grad.data_mut();
        let gb = self.bias.grad.data_mut();
        let gi = grad_in.data_mut();

        #[allow(clippy::needless_range_loop)] // `oc` drives offset math, not just `gb[oc]`
        for oc in 0..self.out_c {
            for x1 in 0..d1 {
                for y in 0..d2 {
                    let o_base = ((oc * d1 + x1) * d2 + y) * d3;
                    let g_row = &g[o_base..o_base + d3];
                    gb[oc] += g_row.iter().sum::<f32>();
                    for ic in 0..self.in_c {
                        for a in 0..k {
                            let sx = x1 + a;
                            if sx < p || sx - p >= d1 {
                                continue;
                            }
                            let ix = sx - p;
                            for b in 0..k {
                                let sy = y + b;
                                if sy < p || sy - p >= d2 {
                                    continue;
                                }
                                let iy = sy - p;
                                let i_base = ((ic * d1 + ix) * d2 + iy) * d3;
                                let w_base = (((oc * self.in_c + ic) * k + a) * k + b) * k;
                                for c in 0..k {
                                    let (z0, z1, i0) = tap_range(d3, c, p);
                                    if z0 >= z1 {
                                        continue;
                                    }
                                    let len = z1 - z0;
                                    let g_slice = &g_row[z0..z1];
                                    let x_slice = &xin[i_base + i0..i_base + i0 + len];
                                    // dL/dw: dot(g_row, x_row shifted).
                                    let mut dot = 0.0f32;
                                    for (gv, xv) in g_slice.iter().zip(x_slice) {
                                        dot += gv * xv;
                                    }
                                    gw[w_base + c] += dot;
                                    // dL/dx: shifted AXPY of g_row by w.
                                    let wv = w[w_base + c];
                                    let gi_slice = &mut gi[i_base + i0..i_base + i0 + len];
                                    for (d, gv) in gi_slice.iter_mut().zip(g_slice) {
                                        *d += wv * gv;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    fn conv(in_c: usize, out_c: usize, k: usize, seed: u64) -> Conv3d {
        Conv3d::new(in_c, out_c, k, &mut Initializer::new(seed))
    }

    #[test]
    fn output_shape_preserves_spatial_dims() {
        let mut c = conv(2, 5, 3, 0);
        let x = Tensor::zeros(&[2, 4, 6, 3]);
        assert_eq!(c.forward(&x).shape(), &[5, 4, 6, 3]);
        // Also for 1x1x1 kernels and odd sizes.
        let mut c1 = conv(2, 1, 1, 0);
        assert_eq!(c1.forward(&x).shape(), &[1, 4, 6, 3]);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // One input channel, one output channel, 3x3x3 kernel with a 1 at
        // the center: convolution must be the identity.
        let mut c = conv(1, 1, 3, 0);
        c.params_mut()[0].value.fill(0.0);
        // Index of weight [oc=0, ic=0, a=1, b=1, c=1] in the flat buffer.
        #[allow(clippy::erasing_op, clippy::identity_op)]
        let center = ((0 * 3 + 1) * 3 + 1) * 3 + 1;
        c.weight.value.data_mut()[center] = 1.0;
        c.bias.value.fill(0.0);
        let x = Tensor::from_fn4(&[1, 3, 3, 2], |_, a, b, d| (a * 100 + b * 10 + d) as f32);
        let y = c.forward(&x);
        assert_eq!(y, x);
    }

    #[test]
    fn bias_shifts_output() {
        let mut c = conv(1, 1, 1, 0);
        c.weight.value.fill(0.0);
        c.bias.value.fill(2.5);
        let x = Tensor::zeros(&[1, 2, 2, 2]);
        let y = c.forward(&x);
        assert!(y.data().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn zero_padding_at_borders() {
        // Kernel of all ones sums the 3x3x1 neighborhood; at a corner of a
        // 2x2x1 input only 4 cells exist.
        let mut c = conv(1, 1, 3, 0);
        c.weight.value.fill(1.0);
        c.bias.value.fill(0.0);
        let x = Tensor::from_vec(&[1, 2, 2, 1], vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let y = c.forward(&x);
        assert!(y.data().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut c = conv(2, 3, 3, 7);
        let x = Initializer::new(3).uniform(&[2, 3, 2, 2], 1.0);
        check_layer_gradients(&mut c, &x, 1e-2, 2e-2);
    }

    #[test]
    fn gradients_match_for_1x1_kernels() {
        let mut c = conv(3, 2, 1, 9);
        let x = Initializer::new(4).uniform(&[3, 2, 3, 2], 1.0);
        check_layer_gradients(&mut c, &x, 1e-2, 2e-2);
    }

    #[test]
    #[should_panic(expected = "odd kernel")]
    fn even_kernel_panics() {
        conv(1, 1, 2, 0);
    }
}
