//! 3D convolution with same-padding and full backpropagation, lowered to
//! an implicit-im2col GEMM over a zero-padded input copy.
//!
//! # Kernel layout and bit-identity
//!
//! The weight tensor is stored flat as `[out_c][in_c·k³]` — each output
//! channel's row is the patch vector in `(ic, a, b, c)` lexicographic
//! order. Instead of materializing the `[K][N]` im2col patch matrix
//! (`K = in_c·k³`, `N` = output voxels), the kernels index a zero-padded
//! copy of the input through a per-tap offset table: tap `kx` of output
//! voxel `(x, y, z)` lives at `off[kx] + x·pd2·pd3 + y·pd3 + z` in the
//! padded volume, and because the `z`/V axis is contiguous, every tap of a
//! fixed output row is a contiguous slice. Forward is then
//! `out = W · B + bias` with `B` never written down, computed by a
//! register-blocked micro-kernel (`MR` output channels × `NR` z lanes,
//! K ascending).
//!
//! Every kernel in this module preserves the *per-output-element*
//! accumulation order of the naive seven-loop implementation (kept below as
//! the `cfg`-gated reference oracle, `Conv3d::set_naive`):
//!
//! * forward: bias first, then taps in `(ic, a, b, c)` ascending order;
//! * weight grad: for each element, one *fresh* z-ascending dot per output
//!   row, added in row-ascending order;
//! * bias grad: fresh z-ascending row sums, rows ascending;
//! * input grad: contributions in `(oc asc, x₁ asc, y asc, z desc)` order,
//!   realized as a gather with loop order `oc asc, a desc, b desc, c asc`
//!   over a zero-padded output-gradient buffer.
//!
//! Out-of-range taps either vanish with the whole `(a, b)` plane (skipped,
//! exactly as the naive loops skip them) or appear as explicit `±0.0`
//! terms read from the padded buffers; since IEEE-754 addition of `-0.0`
//! never changes a value and the accumulators provably never hold `-0.0`,
//! both treatments are bit-identical to the naive loops. Blocking only
//! ever groups *independent* output elements (output-channel lanes, z
//! lanes, input-channel lanes), never the terms of one element's sum, so
//! logits, gradients, and therefore whole training trajectories are
//! unchanged by this lowering.

use crate::init::Initializer;
use crate::kernels::{self, ICT, MR, NR, WL};
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;
use crate::workspace::{NnWorkspace, ProfKind};
use oarsmt_telemetry::Counter;
/// Target im2col panel width in columns for the small-`d3` forward path
/// (panels are whole output rows, so the actual width is the nearest
/// multiple of `d3`). Keeps the patch panel cache-resident.
const PANEL_COLS: usize = 4096;

/// A 3D convolution layer: weight `[out_c, in_c, k, k, k]`, bias `[out_c]`,
/// stride 1, zero same-padding `k / 2` (so spatial dimensions are
/// preserved — the property that keeps the U-Net image-in-image-out for
/// arbitrary sizes).
///
/// The paper's network uses `3×3×3` kernels throughout plus `1×1×1` output
/// heads; both are supported (any odd `k`).
#[derive(Debug, Clone, PartialEq)]
pub struct Conv3d {
    in_c: usize,
    out_c: usize,
    k: usize,
    weight: Param,
    bias: Param,
    /// The forward input, cached for backward. Stored *padded*
    /// (`[in_c, d1+2p, d2+2p, d3+2p]`) when `k > 1`: the forward pass
    /// builds the padded copy anyway, so caching it costs nothing and
    /// saves backward the rebuild.
    cache_input: Option<Tensor>,
    /// Route through the naive reference loops instead of the GEMM kernels
    /// (bit-identity oracle for tests and the bench's integrity check).
    #[cfg(any(test, feature = "naive-ref"))]
    use_naive: bool,
}

impl Conv3d {
    /// Creates a convolution with He-uniform weights.
    ///
    /// # Panics
    ///
    /// Panics if `k` is even (same-padding needs odd kernels) or a channel
    /// count is zero.
    pub fn new(in_c: usize, out_c: usize, k: usize, init: &mut Initializer) -> Self {
        assert!(k % 2 == 1, "same-padding conv needs an odd kernel, got {k}");
        assert!(in_c > 0 && out_c > 0);
        let fan_in = in_c * k * k * k;
        let weight = Param::new(init.he_uniform(&[out_c, in_c, k, k, k], fan_in));
        let bias = Param::new(Tensor::zeros(&[out_c]));
        Conv3d {
            in_c,
            out_c,
            k,
            weight,
            bias,
            cache_input: None,
            #[cfg(any(test, feature = "naive-ref"))]
            use_naive: false,
        }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_c
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// Selects the naive reference implementation (the pre-GEMM seven-loop
    /// code) for this layer. Test/bench oracle only.
    #[cfg(any(test, feature = "naive-ref"))]
    pub fn set_naive(&mut self, on: bool) {
        self.use_naive = on;
    }

    /// The backward cache for input `x`: a plain copy for `k == 1`, the
    /// zero-padded copy otherwise (what the GEMM path caches, so the naive
    /// oracle sees identical state).
    #[cfg(any(test, feature = "naive-ref"))]
    fn cache_of(&self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        if self.k == 1 {
            ws.alloc_copy(x)
        } else {
            pad_input(x, self.k / 2, ws)
        }
    }

    fn forward_impl(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        let want_cache = ws.training();
        let (out, cache) = self.forward_core(x, ws, want_cache);
        self.cache_input = cache;
        out
    }

    /// The shared forward machinery behind [`Layer::forward_in`] and
    /// [`Conv3d::infer_in`]: computes the output and, when `want_cache`,
    /// the backward cache (a plain copy for `k == 1`, the zero-padded copy
    /// otherwise). `&self` so read-only shared selectors can run inference
    /// without cloning weights.
    fn forward_core(
        &self,
        x: &Tensor,
        ws: &mut NnWorkspace,
        want_cache: bool,
    ) -> (Tensor, Option<Tensor>) {
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "conv3d expects [c, d1, d2, d3]");
        assert_eq!(shape[0], self.in_c, "conv3d channel mismatch");
        let (d1, d2, d3) = (shape[1], shape[2], shape[3]);
        // Tier A: forward multiply-accumulates, attributed to the layer the
        // workspace is currently tagged with (same count on every path,
        // including the naive oracle).
        let macs =
            (self.out_c * self.in_c * self.k * self.k * self.k) as u64 * (d1 * d2 * d3) as u64;
        ws.counters.add_at(ws.mac_slot, macs);

        #[cfg(any(test, feature = "naive-ref"))]
        if self.use_naive {
            let out = self.forward_naive(x);
            let cache = want_cache.then(|| self.cache_of(x, ws));
            return (out, cache);
        }

        let k = self.k;
        let p = k / 2;
        let (pd1, pd2, pd3) = (d1 + 2 * p, d2 + 2 * p, d3 + 2 * p);
        let simd = ws.simd_active();
        if simd {
            ws.counters.bump(Counter::GemmKernelSimd);
        }
        let mut out = ws.alloc(&[self.out_c, d1, d2, d3]);
        let w = self.weight.value.data();
        let bias = self.bias.value.data();
        let mut off = std::mem::take(&mut ws.tap_off);
        tap_offsets(self.in_c, k, pd1, pd2, pd3, &mut off);
        if p == 0 {
            if d3 >= NR {
                ws.counters.bump(Counter::GemmDirect);
                conv_fwd(
                    x.data(),
                    &off,
                    d2,
                    d3,
                    d1 * d2,
                    d2,
                    d3,
                    w,
                    bias,
                    self.out_c,
                    out.data_mut(),
                    d1 * d2 * d3,
                    0,
                    simd,
                );
            } else {
                // 1×1×1 on a shallow grid: the patch matrix is the input
                // itself with flat `[n]` columns, so the GEMM tiles span
                // row boundaries instead of degrading to narrow z tiles.
                ws.counters.bump(Counter::GemmFlat);
                let n = d1 * d2 * d3;
                gemm_bias(
                    self.out_c,
                    self.in_c,
                    n,
                    w,
                    bias,
                    x.data(),
                    n,
                    out.data_mut(),
                    n,
                    0,
                    simd,
                );
            }
            let cache = want_cache.then(|| ws.alloc_copy(x));
            ws.tap_off = off;
            (out, cache)
        } else {
            let xp = pad_input(x, p, ws);
            if d3 >= NR {
                ws.counters.bump(Counter::GemmDirect);
                conv_fwd(
                    xp.data(),
                    &off,
                    d2,
                    d3,
                    d1 * d2,
                    pd2,
                    pd3,
                    w,
                    bias,
                    self.out_c,
                    out.data_mut(),
                    d1 * d2 * d3,
                    0,
                    simd,
                );
            } else {
                // Shallow grids (the pooled U-Net levels): materialize the
                // patch panel so GEMM tiles run over flat row-spanning
                // columns — with `d3 < NR` the implicit-im2col tiles would
                // mostly be scalar edges.
                ws.counters.bump(Counter::GemmPanel);
                let n = d1 * d2 * d3;
                let rows = d1 * d2;
                let kd = self.in_c * k * k * k;
                let rows_per_panel = (PANEL_COLS / d3).clamp(1, rows);
                let mut bbuf = ws.take_im2col(kd * rows_per_panel * d3);
                let mut r0 = 0;
                while r0 < rows {
                    let r1 = (r0 + rows_per_panel).min(rows);
                    let cols = (r1 - r0) * d3;
                    im2col_from_padded(
                        xp.data(),
                        &off,
                        k,
                        d2,
                        d3,
                        pd2,
                        pd3,
                        r0,
                        r1,
                        &mut bbuf,
                        cols,
                        0,
                    );
                    gemm_bias(
                        self.out_c,
                        kd,
                        cols,
                        w,
                        bias,
                        &bbuf,
                        cols,
                        out.data_mut(),
                        n,
                        r0 * d3,
                        simd,
                    );
                    r0 = r1;
                }
                ws.put_im2col(bbuf);
            }
            let cache = if want_cache {
                Some(xp)
            } else {
                ws.free(xp);
                None
            };
            ws.tap_off = off;
            (out, cache)
        }
    }

    /// Read-only inference forward: identical arithmetic to
    /// [`Layer::forward_in`] (bit for bit) but takes `&self` and records no
    /// backward cache, so one selector instance can serve many workers
    /// without cloning its weights.
    pub fn infer_in(&self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let (out, cache) = self.forward_core(x, ws, false);
        debug_assert!(cache.is_none());
        ws.prof_end(t, ProfKind::ConvFwd);
        out
    }

    /// Builds the sample-major zero-padded batch cache
    /// `[B, in_c, d1+2p, d2+2p, d3+2p]` from a channel-major batched input
    /// `[in_c, B, d1, d2, d3]`. Sample `b`'s subtensor is exactly what the
    /// single-sample kernels consume, so backward runs the per-sample
    /// primitives unchanged (`p == 0` degenerates to a plain re-layout).
    fn build_xp5(&self, x: &Tensor, p: usize, ws: &mut NnWorkspace) -> Tensor {
        let s = x.shape();
        let (bsz, d1, d2, d3) = (s[1], s[2], s[3], s[4]);
        let (pd1, pd2, pd3) = (d1 + 2 * p, d2 + 2 * p, d3 + 2 * p);
        let spatial = d1 * d2 * d3;
        let pvol = pd1 * pd2 * pd3;
        let mut xp = ws.alloc(&[bsz, self.in_c, pd1, pd2, pd3]);
        let xd = x.data();
        let xpd = xp.data_mut();
        for b in 0..bsz {
            for ic in 0..self.in_c {
                let sbase = (ic * bsz + b) * spatial;
                let dbase = (b * self.in_c + ic) * pvol;
                for x1 in 0..d1 {
                    for y in 0..d2 {
                        let src = sbase + (x1 * d2 + y) * d3;
                        let dst = dbase + ((x1 + p) * pd2 + y + p) * pd3 + p;
                        xpd[dst..dst + d3].copy_from_slice(&xd[src..src + d3]);
                    }
                }
            }
        }
        xp
    }

    fn forward_batch_impl(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 5, "conv3d batch expects [c, b, d1, d2, d3]");
        assert_eq!(s[0], self.in_c, "conv3d channel mismatch");
        let (bsz, d1, d2, d3) = (s[1], s[2], s[3], s[4]);
        let spatial = d1 * d2 * d3;
        // Tier A MACs: exactly the sum of the per-sample counts.
        let macs =
            (self.out_c * self.in_c * self.k * self.k * self.k) as u64 * (bsz * spatial) as u64;
        ws.counters.add_at(ws.mac_slot, macs);

        let k = self.k;
        let p = k / 2;
        let (pd1, pd2, pd3) = (d1 + 2 * p, d2 + 2 * p, d3 + 2 * p);
        let pvol = pd1 * pd2 * pd3;
        let mut out = ws.alloc(&[self.out_c, bsz, d1, d2, d3]);

        #[cfg(any(test, feature = "naive-ref"))]
        if self.use_naive {
            // Oracle route: per-sample seven-loop forward, scattered into
            // the batched layout; the cache is the batched padded copy
            // (identical state to the GEMM route).
            let mut xb = ws.alloc(&[self.in_c, d1, d2, d3]);
            for b in 0..bsz {
                gather_sample(x.data(), bsz, b, spatial, xb.data_mut());
                let yb = self.forward_naive(&xb);
                scatter_sample(yb.data(), bsz, b, spatial, out.data_mut());
                ws.free(yb);
            }
            ws.free(xb);
            self.cache_input = ws.training().then(|| self.build_xp5(x, p, ws));
            return out;
        }

        let w = self.weight.value.data();
        let bias = self.bias.value.data();
        let simd = ws.simd_active();
        if simd {
            ws.counters.bump(Counter::GemmKernelSimd);
        }
        if p == 0 {
            // 1×1×1: the batched input *is* the patch matrix with flat
            // `[B·n]` columns — one GEMM serves the whole batch. Per-element
            // accumulation (bias first, K ascending) is unchanged, so this
            // is bit-identical to the per-sample direct/flat paths.
            ws.counters.bump(Counter::GemmFlat);
            let n = bsz * spatial;
            gemm_bias(
                self.out_c,
                self.in_c,
                n,
                w,
                bias,
                x.data(),
                n,
                out.data_mut(),
                n,
                0,
                simd,
            );
            self.cache_input = ws.training().then(|| self.build_xp5(x, 0, ws));
        } else {
            let xp = self.build_xp5(x, p, ws);
            let mut off = std::mem::take(&mut ws.tap_off);
            tap_offsets(self.in_c, k, pd1, pd2, pd3, &mut off);
            if d3 >= NR {
                // Deep-z grids: the implicit-im2col kernel is already
                // tile-efficient; run it per sample, writing each sample's
                // rows straight into the batched layout via the kernel's
                // output stride — no staging copy.
                ws.counters.bump(Counter::GemmDirect);
                let n = bsz * spatial;
                for b in 0..bsz {
                    let xpb = &xp.data()[b * self.in_c * pvol..][..self.in_c * pvol];
                    conv_fwd(
                        xpb,
                        &off,
                        d2,
                        d3,
                        d1 * d2,
                        pd2,
                        pd3,
                        w,
                        bias,
                        self.out_c,
                        out.data_mut(),
                        n,
                        b * spatial,
                        simd,
                    );
                }
            } else {
                // Shallow-z grids (the pooled U-Net levels, where batching
                // pays most): assemble panels over *global* rows
                // `0 .. B·rows` so GEMM tiles span sample boundaries and
                // the ragged `d3 < NR` columns fatten up.
                ws.counters.bump(Counter::GemmPanel);
                let rows = d1 * d2;
                let rows_g = bsz * rows;
                let kd = self.in_c * k * k * k;
                // Panels chunk *global* rows, so their upper bound is
                // `rows_g`, not the per-sample row count — a panel spanning
                // several samples is exactly the batching win.
                let rows_per_panel = (PANEL_COLS / d3).clamp(1, rows_g);
                let mut bbuf = ws.take_im2col(kd * rows_per_panel * d3);
                let n = bsz * spatial;
                let xpd = xp.data();
                let mut r0g = 0;
                while r0g < rows_g {
                    let r1g = (r0g + rows_per_panel).min(rows_g);
                    let cols = (r1g - r0g) * d3;
                    // A panel may span samples: fill it from each sample's
                    // padded volume at its column offset within the panel.
                    let mut r = r0g;
                    while r < r1g {
                        let b = r / rows;
                        let r0 = r % rows;
                        let r1 = rows.min(r0 + (r1g - r));
                        let xpb = &xpd[b * self.in_c * pvol..][..self.in_c * pvol];
                        im2col_from_padded(
                            xpb,
                            &off,
                            k,
                            d2,
                            d3,
                            pd2,
                            pd3,
                            r0,
                            r1,
                            &mut bbuf,
                            cols,
                            (r - r0g) * d3,
                        );
                        r += r1 - r0;
                    }
                    gemm_bias(
                        self.out_c,
                        kd,
                        cols,
                        w,
                        bias,
                        &bbuf,
                        cols,
                        out.data_mut(),
                        n,
                        r0g * d3,
                        simd,
                    );
                    r0g = r1g;
                }
                ws.put_im2col(bbuf);
            }
            ws.tap_off = off;
            if ws.training() {
                self.cache_input = Some(xp);
            } else {
                ws.free(xp);
                self.cache_input = None;
            }
        }
        out
    }

    fn backward_batch_impl(&mut self, grad_out: Tensor, ws: &mut NnWorkspace) -> Tensor {
        // lint: panic-ok(caller-contract guard: backward without a prior forward is API misuse and must fail loudly, not compute garbage gradients)
        let xc = self
            .cache_input
            .take()
            .expect("conv3d batched backward without forward");
        assert_eq!(
            xc.shape().len(),
            5,
            "batched backward needs a batched forward"
        );
        let k = self.k;
        let p = k / 2;
        let bsz = xc.shape()[0];
        let (d1, d2, d3) = {
            let s = xc.shape();
            (s[2] - 2 * p, s[3] - 2 * p, s[4] - 2 * p)
        };
        let (pd1, pd2, pd3) = (d1 + 2 * p, d2 + 2 * p, d3 + 2 * p);
        assert_eq!(grad_out.shape(), &[self.out_c, bsz, d1, d2, d3]);
        let spatial = d1 * d2 * d3;
        let pvol = pd1 * pd2 * pd3;
        let rows = d1 * d2;
        let macs = (self.out_c * self.in_c * k * k * k) as u64 * (bsz * spatial) as u64;
        ws.counters.add_at(ws.mac_slot, 2 * macs);

        #[cfg(any(test, feature = "naive-ref"))]
        if self.use_naive {
            // Oracle route: per-sample naive backward over per-sample
            // copies, samples ascending — the exact sequential `+=` order
            // on every weight/bias-gradient element.
            let mut grad_in = ws.alloc(&[self.in_c, bsz, d1, d2, d3]);
            let mut xb = ws.alloc(&[self.in_c, pd1, pd2, pd3]);
            let mut gb = ws.alloc(&[self.out_c, d1, d2, d3]);
            for b in 0..bsz {
                xb.data_mut()
                    .copy_from_slice(&xc.data()[b * self.in_c * pvol..][..self.in_c * pvol]);
                gather_sample(grad_out.data(), bsz, b, spatial, gb.data_mut());
                let gi = self.backward_naive(&xb, &gb);
                scatter_sample(gi.data(), bsz, b, spatial, grad_in.data_mut());
                ws.free(gi);
            }
            ws.free(xb);
            ws.free(gb);
            ws.free(xc);
            ws.free(grad_out);
            return grad_in;
        }

        let g = grad_out.data();
        let n = bsz * spatial;
        let simd = ws.simd_active();
        if simd {
            ws.counters.bump(Counter::GemmKernelSimd);
        }

        // Bias gradient: per element `gb[oc]`, fresh z-ascending row sums
        // added samples-ascending then rows-ascending — the sequential
        // per-sample order.
        {
            let gbias = self.bias.grad.data_mut();
            for (oc, gbv) in gbias.iter_mut().enumerate().take(self.out_c) {
                for b in 0..bsz {
                    for r in 0..rows {
                        let base = (oc * bsz + b) * spatial + r * d3;
                        *gbv += g[base..base + d3].iter().sum::<f32>();
                    }
                }
            }
        }

        // Weight gradient: one transpose of the whole batched gradient
        // (sample `b`'s `[spatial][out_c]` block lands contiguously), then
        // the unchanged per-sample kernel, samples ascending.
        let mut gt = std::mem::take(&mut ws.g_t);
        transpose_into(g, self.out_c, n, &mut gt);
        let mut off = std::mem::take(&mut ws.tap_off);
        tap_offsets(self.in_c, k, pd1, pd2, pd3, &mut off);
        {
            let gw = self.weight.grad.data_mut();
            for b in 0..bsz {
                let gtb = &gt[b * spatial * self.out_c..][..spatial * self.out_c];
                let xpb = &xc.data()[b * self.in_c * pvol..][..self.in_c * pvol];
                weight_grad(gtb, self.out_c, xpb, &off, d2, d3, rows, pd2, pd3, gw, simd);
            }
        }
        ws.tap_off = off;
        ws.g_t = gt;

        // Input gradient: per sample, gather the strided batched gradient
        // into a contiguous zero-padded copy (a plain re-layout when
        // `p == 0`), then run the gather kernel with the batched output
        // stride so sample `b`'s rows land straight in the `[C, B, …]`
        // layout — no staging volume, no scatter.
        let mut grad_in = ws.alloc(&[self.in_c, bsz, d1, d2, d3]);
        let mut gpad = std::mem::take(&mut ws.g_pad);
        // One memset for the whole batch: every interior cell is
        // overwritten per sample below, so only the (always-zero) padding
        // halo needs clearing — not once per sample.
        gpad.clear();
        gpad.resize(self.out_c * pvol, 0.0);
        for b in 0..bsz {
            for oc in 0..self.out_c {
                for x1 in 0..d1 {
                    for y in 0..d2 {
                        let src = (oc * bsz + b) * spatial + (x1 * d2 + y) * d3;
                        let dst = ((oc * pd1 + x1 + p) * pd2 + y + p) * pd3 + p;
                        gpad[dst..dst + d3].copy_from_slice(&g[src..src + d3]);
                    }
                }
            }
            input_grad_gather(
                &gpad,
                self.out_c,
                self.in_c,
                k,
                p,
                d1,
                d2,
                d3,
                pd1,
                pd2,
                pd3,
                self.weight.value.data(),
                grad_in.data_mut(),
                n,
                b * spatial,
                simd,
            );
        }
        ws.g_pad = gpad;
        ws.free(xc);
        ws.free(grad_out);
        grad_in
    }

    fn backward_impl(&mut self, grad_out: Tensor, ws: &mut NnWorkspace) -> Tensor {
        let xc = self
            .cache_input
            .take()
            .expect("conv3d backward without forward");
        let k = self.k;
        let p = k / 2;
        // The cache is padded when `k > 1`; recover the output geometry.
        let (d1, d2, d3) = {
            let s = xc.shape();
            (s[1] - 2 * p, s[2] - 2 * p, s[3] - 2 * p)
        };
        assert_eq!(grad_out.shape(), &[self.out_c, d1, d2, d3]);
        // Tier A: backward runs the weight-gradient and input-gradient
        // passes, each the forward's MAC count.
        let macs = (self.out_c * self.in_c * k * k * k) as u64 * (d1 * d2 * d3) as u64;
        ws.counters.add_at(ws.mac_slot, 2 * macs);

        #[cfg(any(test, feature = "naive-ref"))]
        if self.use_naive {
            let grad_in = self.backward_naive(&xc, &grad_out);
            ws.free(xc);
            ws.free(grad_out);
            return grad_in;
        }

        let n = d1 * d2 * d3;
        let rows = d1 * d2;
        let (pd1, pd2, pd3) = (d1 + 2 * p, d2 + 2 * p, d3 + 2 * p);
        let simd = ws.simd_active();
        if simd {
            ws.counters.bump(Counter::GemmKernelSimd);
        }
        let g = grad_out.data();

        // Bias gradient: identical row-sum loop to the naive path.
        {
            let gb = self.bias.grad.data_mut();
            for (oc, gbv) in gb.iter_mut().enumerate().take(self.out_c) {
                for r in 0..rows {
                    let base = oc * n + r * d3;
                    *gbv += g[base..base + d3].iter().sum::<f32>();
                }
            }
        }

        // Weight gradient: per (row, tap, oc) fresh z-ascending dots over
        // the padded input cache, vectorized across output-channel lanes
        // via the transposed grad.
        let mut gt = std::mem::take(&mut ws.g_t);
        transpose_into(g, self.out_c, n, &mut gt);
        let mut off = std::mem::take(&mut ws.tap_off);
        tap_offsets(self.in_c, k, pd1, pd2, pd3, &mut off);
        {
            let gw = self.weight.grad.data_mut();
            weight_grad(
                &gt,
                self.out_c,
                xc.data(),
                &off,
                d2,
                d3,
                rows,
                pd2,
                pd3,
                gw,
                simd,
            );
        }
        ws.tap_off = off;
        ws.g_t = gt;

        // Input gradient: register-tiled gather over the zero-padded
        // output gradient in the naive order (oc asc, a desc ⇒ x₁ asc,
        // b desc ⇒ y asc, c asc).
        let mut grad_in = ws.alloc(&[self.in_c, d1, d2, d3]);
        if p == 0 {
            input_grad_gather(
                g,
                self.out_c,
                self.in_c,
                k,
                p,
                d1,
                d2,
                d3,
                d1,
                d2,
                d3,
                self.weight.value.data(),
                grad_in.data_mut(),
                n,
                0,
                simd,
            );
        } else {
            let mut gpad = std::mem::take(&mut ws.g_pad);
            gpad.clear();
            gpad.resize(self.out_c * pd1 * pd2 * pd3, 0.0);
            for oc in 0..self.out_c {
                for x1 in 0..d1 {
                    for y in 0..d2 {
                        let src = oc * n + (x1 * d2 + y) * d3;
                        let dst = ((oc * pd1 + x1 + p) * pd2 + y + p) * pd3 + p;
                        gpad[dst..dst + d3].copy_from_slice(&g[src..src + d3]);
                    }
                }
            }
            input_grad_gather(
                &gpad,
                self.out_c,
                self.in_c,
                k,
                p,
                d1,
                d2,
                d3,
                pd1,
                pd2,
                pd3,
                self.weight.value.data(),
                grad_in.data_mut(),
                n,
                0,
                simd,
            );
            ws.g_pad = gpad;
        }

        ws.free(xc);
        ws.free(grad_out);
        grad_in
    }

    /// The original seven-loop forward, kept verbatim as the bit-identity
    /// oracle for the GEMM kernels.
    #[cfg(any(test, feature = "naive-ref"))]
    fn forward_naive(&self, x: &Tensor) -> Tensor {
        let shape = x.shape();
        let (d1, d2, d3) = (shape[1], shape[2], shape[3]);
        let k = self.k;
        let p = k / 2;
        let mut out = Tensor::zeros(&[self.out_c, d1, d2, d3]);
        let bias = self.bias.value.data().to_vec();
        let w = self.weight.value.data();
        let xin = x.data();
        let out_data = out.data_mut();
        // The z axis is contiguous: accumulate per (oc, x, y) output row
        // with shifted-slice AXPYs.
        #[allow(clippy::needless_range_loop)] // `oc` drives offset math, not just `bias[oc]`
        for oc in 0..self.out_c {
            for x1 in 0..d1 {
                for y in 0..d2 {
                    let o_base = ((oc * d1 + x1) * d2 + y) * d3;
                    let out_row = &mut out_data[o_base..o_base + d3];
                    out_row.fill(bias[oc]);
                    for ic in 0..self.in_c {
                        for a in 0..k {
                            let sx = x1 + a;
                            if sx < p || sx - p >= d1 {
                                continue;
                            }
                            let ix = sx - p;
                            for b in 0..k {
                                let sy = y + b;
                                if sy < p || sy - p >= d2 {
                                    continue;
                                }
                                let iy = sy - p;
                                let i_base = ((ic * d1 + ix) * d2 + iy) * d3;
                                let w_base = (((oc * self.in_c + ic) * k + a) * k + b) * k;
                                for c in 0..k {
                                    let (z0, z1, i0) = tap_range(d3, c, p);
                                    if z0 >= z1 {
                                        continue;
                                    }
                                    let wv = w[w_base + c];
                                    let src = &xin[i_base + i0..i_base + i0 + (z1 - z0)];
                                    let dst = &mut out_row[z0..z1];
                                    for (d, s) in dst.iter_mut().zip(src) {
                                        *d += wv * s;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// The original backward loops, preserved term-for-term as the
    /// bit-identity oracle for the GEMM kernels. `xc` is the cached
    /// forward input — padded when `k > 1`, so the interior reads shift
    /// by `p` on each axis (the values and their order are unchanged).
    #[cfg(any(test, feature = "naive-ref"))]
    fn backward_naive(&mut self, xc: &Tensor, grad_out: &Tensor) -> Tensor {
        let k = self.k;
        let p = k / 2;
        let (d1, d2, d3) = {
            let s = xc.shape();
            (s[1] - 2 * p, s[2] - 2 * p, s[3] - 2 * p)
        };
        let (pd1, pd2, pd3) = (d1 + 2 * p, d2 + 2 * p, d3 + 2 * p);
        let mut grad_in = Tensor::zeros(&[self.in_c, d1, d2, d3]);
        let g = grad_out.data();
        let xin = xc.data();
        let w = self.weight.value.data();
        let gw = self.weight.grad.data_mut();
        let gb = self.bias.grad.data_mut();
        let gi = grad_in.data_mut();

        #[allow(clippy::needless_range_loop)] // `oc` drives offset math, not just `gb[oc]`
        for oc in 0..self.out_c {
            for x1 in 0..d1 {
                for y in 0..d2 {
                    let o_base = ((oc * d1 + x1) * d2 + y) * d3;
                    let g_row = &g[o_base..o_base + d3];
                    gb[oc] += g_row.iter().sum::<f32>();
                    for ic in 0..self.in_c {
                        for a in 0..k {
                            let sx = x1 + a;
                            if sx < p || sx - p >= d1 {
                                continue;
                            }
                            let ix = sx - p;
                            for b in 0..k {
                                let sy = y + b;
                                if sy < p || sy - p >= d2 {
                                    continue;
                                }
                                let iy = sy - p;
                                let i_base = ((ic * d1 + ix) * d2 + iy) * d3;
                                let x_base = ((ic * pd1 + ix + p) * pd2 + iy + p) * pd3 + p;
                                let w_base = (((oc * self.in_c + ic) * k + a) * k + b) * k;
                                for c in 0..k {
                                    let (z0, z1, i0) = tap_range(d3, c, p);
                                    if z0 >= z1 {
                                        continue;
                                    }
                                    let len = z1 - z0;
                                    let g_slice = &g_row[z0..z1];
                                    let x_slice = &xin[x_base + i0..x_base + i0 + len];
                                    // dL/dw: dot(g_row, x_row shifted).
                                    let mut dot = 0.0f32;
                                    for (gv, xv) in g_slice.iter().zip(x_slice) {
                                        dot += gv * xv;
                                    }
                                    gw[w_base + c] += dot;
                                    // dL/dx: shifted AXPY of g_row by w.
                                    let wv = w[w_base + c];
                                    let gi_slice = &mut gi[i_base + i0..i_base + i0 + len];
                                    for (d, gv) in gi_slice.iter_mut().zip(g_slice) {
                                        *d += wv * gv;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }
}

/// The overlap of a length-`d` axis with a kernel tap at offset `c`
/// (padding `p`): output indices `z` for which `z + c - p` is a valid input
/// index. Returns `(z_start, z_end, input_start)`.
#[inline]
#[cfg(any(test, feature = "naive-ref"))]
fn tap_range(d: usize, c: usize, p: usize) -> (usize, usize, usize) {
    let z0 = p.saturating_sub(c);
    let z1 = (d + p).saturating_sub(c).min(d);
    let i0 = z0 + c - p;
    (z0, z1.max(z0), i0)
}

/// Copies `x` into a fresh zero-padded `[in_c, d1+2p, d2+2p, d3+2p]`
/// workspace tensor.
fn pad_input(x: &Tensor, p: usize, ws: &mut NnWorkspace) -> Tensor {
    let s = x.shape();
    let (in_c, d1, d2, d3) = (s[0], s[1], s[2], s[3]);
    let (pd1, pd2, pd3) = (d1 + 2 * p, d2 + 2 * p, d3 + 2 * p);
    let mut xp = ws.alloc(&[in_c, pd1, pd2, pd3]);
    let xd = x.data();
    let xpd = xp.data_mut();
    for ic in 0..in_c {
        for x1 in 0..d1 {
            for y in 0..d2 {
                let src = ((ic * d1 + x1) * d2 + y) * d3;
                let dst = ((ic * pd1 + x1 + p) * pd2 + y + p) * pd3 + p;
                xpd[dst..dst + d3].copy_from_slice(&xd[src..src + d3]);
            }
        }
    }
    xp
}

/// Fills `off` with the padded-volume offset of each kernel tap in
/// `(ic, a, b, c)` lexicographic order — the K axis of the implicit patch
/// matrix. Tap `kx` of output voxel `(x, y, z)` then lives at
/// `off[kx] + x·pd2·pd3 + y·pd3 + z` of the padded input.
fn tap_offsets(in_c: usize, k: usize, pd1: usize, pd2: usize, pd3: usize, off: &mut Vec<usize>) {
    off.clear();
    for ic in 0..in_c {
        for a in 0..k {
            for b in 0..k {
                for c in 0..k {
                    off.push(((ic * pd1 + a) * pd2 + b) * pd3 + c);
                }
            }
        }
    }
}

/// Fills the im2col panel for output rows `[r0, r1)` from the *padded*
/// input: `bbuf[kx · cols + col0 + j]` holds tap `kx` of output voxel `j`
/// (columns are `col0 + (row − r0) · d3 + z`). Because `xp` is zero-padded
/// the extraction is pure row copies through the tap-offset table. `col0`
/// lets the batched path assemble one panel from several samples' padded
/// volumes; the single-sample path passes `0`.
///
/// Taps come in `(ic, a, b)` groups of `k` consecutive z offsets
/// (`off[g + c] == off[g] + c`), so one padded row segment of
/// `d3 + k − 1` floats serves all `k` tap rows of a group: read it once
/// and write the `k` shifted copies together, instead of re-reading the
/// row per tap. The copies are explicit element loops — this path only
/// runs for `d3 <` [`NR`], where segments are short enough that a
/// `memcpy` call would cost more than the moves.
#[allow(clippy::too_many_arguments)]
fn im2col_from_padded(
    xp: &[f32],
    off: &[usize],
    k: usize,
    d2: usize,
    d3: usize,
    pd2: usize,
    pd3: usize,
    r0: usize,
    r1: usize,
    bbuf: &mut [f32],
    cols: usize,
    col0: usize,
) {
    debug_assert_eq!(off.len() % k, 0);
    let mut g = 0;
    while g < off.len() {
        let base = off[g];
        debug_assert_eq!(off[g + k - 1], base + k - 1);
        // Const-specialize the pooled U-Net geometries (`k = 3`,
        // `d3 ∈ {2, 3}`) so the per-row copies fully unroll; the third
        // const is `d3 + k − 1` spelled out (const generics cannot be
        // computed at the call site).
        match (k, d3) {
            (3, 2) => im2col_group::<3, 2, 4>(xp, base, d2, pd2, pd3, r0, r1, bbuf, cols, col0, g),
            (3, 3) => im2col_group::<3, 3, 5>(xp, base, d2, pd2, pd3, r0, r1, bbuf, cols, col0, g),
            _ => im2col_group_any(xp, base, k, d2, d3, pd2, pd3, r0, r1, bbuf, cols, col0, g),
        }
        g += k;
    }
}

/// One `(ic, a, b)` tap group of the im2col fill, `K` and `D3` known at
/// compile time (`SEG = D3 + K − 1` is the padded row-segment length).
/// Row coordinates advance incrementally — no division in the row loop.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn im2col_group<const K: usize, const D3: usize, const SEG: usize>(
    xp: &[f32],
    base: usize,
    d2: usize,
    pd2: usize,
    pd3: usize,
    r0: usize,
    r1: usize,
    bbuf: &mut [f32],
    cols: usize,
    col0: usize,
    g: usize,
) {
    debug_assert_eq!(SEG, D3 + K - 1);
    let (mut x, mut y) = (r0 / d2, r0 % d2);
    let mut dst = col0;
    for _ in r0..r1 {
        let src = base + (x * pd2 + y) * pd3;
        // lint: panic-ok(the slice is exactly SEG long by construction, so the array conversion cannot fail; the expect only converts the type)
        let seg: &[f32; SEG] = xp[src..src + SEG].try_into().expect("segment length");
        for c in 0..K {
            let o0 = (g + c) * cols + dst;
            bbuf[o0..o0 + D3].copy_from_slice(&seg[c..c + D3]);
        }
        dst += D3;
        y += 1;
        if y == d2 {
            y = 0;
            x += 1;
        }
    }
}

/// Runtime-size fallback of [`im2col_group`] for geometries outside the
/// specialized set.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn im2col_group_any(
    xp: &[f32],
    base: usize,
    k: usize,
    d2: usize,
    d3: usize,
    pd2: usize,
    pd3: usize,
    r0: usize,
    r1: usize,
    bbuf: &mut [f32],
    cols: usize,
    col0: usize,
    g: usize,
) {
    let (mut x, mut y) = (r0 / d2, r0 % d2);
    let mut dst = col0;
    for _ in r0..r1 {
        let src = base + (x * pd2 + y) * pd3;
        let seg = &xp[src..src + d3 + k - 1];
        for c in 0..k {
            let o0 = (g + c) * cols + dst;
            let krow = &mut bbuf[o0..o0 + d3];
            for (o, &v) in krow.iter_mut().zip(&seg[c..c + d3]) {
                *o = v;
            }
        }
        dst += d3;
        y += 1;
        if y == d2 {
            y = 0;
            x += 1;
        }
    }
}

/// `out[i][col0 + j] = bias[i] + Σ_k a[i][k] · b[k][j]` for `i < m`,
/// `j < n`, with the K loop strictly ascending per output element.
/// Dispatched whole through [`kernels::gemm_bias`]: the scalar lane walks
/// [`MR`]×[`NR`] register tiles (the bit-identity layout), the AVX2 lane
/// walks wider column-major panels with the same per-element accumulation
/// order.
#[allow(clippy::too_many_arguments)]
fn gemm_bias(
    m: usize,
    kd: usize,
    n: usize,
    a: &[f32],
    bias: &[f32],
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    col0: usize,
    simd: bool,
) {
    kernels::gemm_bias(simd, m, kd, n, a, bias, b, ldb, out, ldo, col0);
}

/// Forward: `out[oc][r][z] = bias[oc] + Σ_kx w[oc][kx] · xp[off[kx] + …]`
/// with the K loop strictly ascending per output element. Register-blocked
/// [`MR`]×[`NR`] tiles; ragged edges use narrower tiles with the same
/// per-element order. Output channel `oc` lands at row `oc * ldo + col0`,
/// so a batched caller can write sample `b` straight into the channel-major
/// `[C, B, …]` layout (`ldo = B·spatial`, `col0 = b·spatial`) with no
/// staging copy; single-sample callers pass `ldo = spatial`, `col0 = 0`.
#[allow(clippy::too_many_arguments)]
fn conv_fwd(
    xp: &[f32],
    off: &[usize],
    d2: usize,
    d3: usize,
    rows: usize,
    pd2: usize,
    pd3: usize,
    w: &[f32],
    bias: &[f32],
    out_c: usize,
    out: &mut [f32],
    ldo: usize,
    col0: usize,
    simd: bool,
) {
    let mut oc0 = 0;
    while oc0 < out_c {
        if out_c - oc0 >= MR {
            fwd_rows::<MR>(
                xp, off, d2, d3, rows, pd2, pd3, w, bias, oc0, out, ldo, col0, simd,
            );
            oc0 += MR;
        } else {
            fwd_rows::<1>(
                xp, off, d2, d3, rows, pd2, pd3, w, bias, oc0, out, ldo, col0, simd,
            );
            oc0 += 1;
        }
    }
}

/// One block of `M` output channels of the forward pass.
#[allow(clippy::too_many_arguments)]
fn fwd_rows<const M: usize>(
    xp: &[f32],
    off: &[usize],
    d2: usize,
    d3: usize,
    rows: usize,
    pd2: usize,
    pd3: usize,
    w: &[f32],
    bias: &[f32],
    oc0: usize,
    out: &mut [f32],
    ldo: usize,
    col0: usize,
    simd: bool,
) {
    for r in 0..rows {
        let src_r = ((r / d2) * pd2 + r % d2) * pd3;
        let out_r = col0 + r * d3;
        let mut zc = 0;
        while d3 - zc >= NR {
            kernels::fwd_tile::<M, NR>(
                simd,
                xp,
                off,
                src_r + zc,
                w,
                bias,
                oc0,
                out,
                ldo,
                out_r + zc,
            );
            zc += NR;
        }
        while d3 - zc >= 4 {
            kernels::fwd_tile::<M, 4>(
                simd,
                xp,
                off,
                src_r + zc,
                w,
                bias,
                oc0,
                out,
                ldo,
                out_r + zc,
            );
            zc += 4;
        }
        while zc < d3 {
            kernels::fwd_tile::<M, 1>(
                simd,
                xp,
                off,
                src_r + zc,
                w,
                bias,
                oc0,
                out,
                ldo,
                out_r + zc,
            );
            zc += 1;
        }
    }
}

/// Copies sample `b` out of a channel-major batched volume (`[C, B, …]`,
/// flat per-channel stride `bsz * spatial`) into a contiguous `[C, …]`
/// destination. Only the batched naive-oracle routes gather whole samples;
/// the GEMM routes read the batched layout in place.
#[cfg(any(test, feature = "naive-ref"))]
fn gather_sample(src: &[f32], bsz: usize, b: usize, spatial: usize, dst: &mut [f32]) {
    let channels = dst.len() / spatial;
    for c in 0..channels {
        dst[c * spatial..(c + 1) * spatial]
            .copy_from_slice(&src[(c * bsz + b) * spatial..][..spatial]);
    }
}

/// Inverse of [`gather_sample`]: writes a contiguous `[C, …]` sample into
/// slot `b` of a channel-major batched volume.
#[cfg(any(test, feature = "naive-ref"))]
fn scatter_sample(src: &[f32], bsz: usize, b: usize, spatial: usize, dst: &mut [f32]) {
    let channels = src.len() / spatial;
    for c in 0..channels {
        dst[(c * bsz + b) * spatial..][..spatial]
            .copy_from_slice(&src[c * spatial..(c + 1) * spatial]);
    }
}

/// Transposes `g` (`[out_c][n]`) into `gt` (`[n][out_c]`).
fn transpose_into(g: &[f32], out_c: usize, n: usize, gt: &mut Vec<f32>) {
    gt.clear();
    gt.resize(out_c * n, 0.0);
    for oc in 0..out_c {
        for (j, &v) in g[oc * n..(oc + 1) * n].iter().enumerate() {
            gt[j * out_c + oc] = v;
        }
    }
}

/// Accumulates weight gradients: `gw[oc][kx] += dot(g[oc][row],
/// xp[off[kx] + row])` with one fresh z-ascending dot per row (the naive
/// order), rows ascending, vectorized across [`WL`] output-channel lanes
/// through the transposed gradient `gt`.
#[allow(clippy::too_many_arguments)]
fn weight_grad(
    gt: &[f32],
    out_c: usize,
    xp: &[f32],
    off: &[usize],
    d2: usize,
    d3: usize,
    rows: usize,
    pd2: usize,
    pd3: usize,
    gw: &mut [f32],
    simd: bool,
) {
    let kd = off.len();
    for r in 0..rows {
        let src_r = ((r / d2) * pd2 + r % d2) * pd3;
        let gt_base = r * d3 * out_c;
        for (kx, &o) in off.iter().enumerate() {
            let xrow = &xp[o + src_r..o + src_r + d3];
            let mut oc0 = 0;
            while oc0 < out_c {
                if out_c - oc0 >= WL {
                    kernels::wg_lanes::<WL>(simd, xrow, gt, gt_base, out_c, oc0, gw, kd, kx);
                    oc0 += WL;
                } else {
                    kernels::wg_lanes::<1>(simd, xrow, gt, gt_base, out_c, oc0, gw, kd, kx);
                    oc0 += 1;
                }
            }
        }
    }
}

/// Input gradient as a register-tiled gather: for each `(ic, ix, iy)` row
/// the z-lane accumulators sweep `oc asc, a desc, b desc, c asc` — the
/// naive contribution order — reading the (zero-padded) gradient `gsrc`
/// of padded dims `[out_c][pd1][pd2][pd3]`. [`ICT`] input channels share
/// each padded-row read; out-of-range `(a, b)` planes are skipped exactly
/// as the naive loops skip them.
/// Input-channel row `ic` lands at `ic * ldo + col0`, so a batched caller
/// can write sample `b` straight into the channel-major `[C, B, …]` layout
/// (`ldo = B·spatial`, `col0 = b·spatial`) with no staging copy;
/// single-sample callers pass `ldo = spatial`, `col0 = 0`.
#[allow(clippy::too_many_arguments)]
fn input_grad_gather(
    gsrc: &[f32],
    out_c: usize,
    in_c: usize,
    k: usize,
    p: usize,
    d1: usize,
    d2: usize,
    d3: usize,
    pd1: usize,
    pd2: usize,
    pd3: usize,
    w: &[f32],
    gi: &mut [f32],
    ldo: usize,
    col0: usize,
    simd: bool,
) {
    let mut ic0 = 0;
    while ic0 < in_c {
        let rem = in_c - ic0;
        if rem >= ICT {
            ig_rows::<ICT>(
                gsrc, out_c, in_c, k, p, d1, d2, d3, pd1, pd2, pd3, w, gi, ic0, ldo, col0, simd,
            );
            ic0 += ICT;
        } else if rem == 3 {
            ig_rows::<3>(
                gsrc, out_c, in_c, k, p, d1, d2, d3, pd1, pd2, pd3, w, gi, ic0, ldo, col0, simd,
            );
            ic0 += 3;
        } else if rem == 2 {
            ig_rows::<2>(
                gsrc, out_c, in_c, k, p, d1, d2, d3, pd1, pd2, pd3, w, gi, ic0, ldo, col0, simd,
            );
            ic0 += 2;
        } else {
            ig_rows::<1>(
                gsrc, out_c, in_c, k, p, d1, d2, d3, pd1, pd2, pd3, w, gi, ic0, ldo, col0, simd,
            );
            ic0 += 1;
        }
    }
}

/// One block of `L` input channels of the gradient gather.
#[allow(clippy::too_many_arguments)]
fn ig_rows<const L: usize>(
    gsrc: &[f32],
    out_c: usize,
    in_c: usize,
    k: usize,
    p: usize,
    d1: usize,
    d2: usize,
    d3: usize,
    pd1: usize,
    pd2: usize,
    pd3: usize,
    w: &[f32],
    gi: &mut [f32],
    ic0: usize,
    ldo: usize,
    col0: usize,
    simd: bool,
) {
    for ix in 0..d1 {
        for iy in 0..d2 {
            let mut zc = 0;
            while d3 - zc >= NR {
                kernels::ig_tile::<L, NR>(
                    simd, gsrc, out_c, in_c, k, p, d1, d2, d3, pd1, pd2, pd3, w, gi, ic0, ix, iy,
                    zc, ldo, col0,
                );
                zc += NR;
            }
            while d3 - zc >= 4 {
                kernels::ig_tile::<L, 4>(
                    simd, gsrc, out_c, in_c, k, p, d1, d2, d3, pd1, pd2, pd3, w, gi, ic0, ix, iy,
                    zc, ldo, col0,
                );
                zc += 4;
            }
            while zc < d3 {
                kernels::ig_tile::<L, 1>(
                    simd, gsrc, out_c, in_c, k, p, d1, d2, d3, pd1, pd2, pd3, w, gi, ic0, ix, iy,
                    zc, ldo, col0,
                );
                zc += 1;
            }
        }
    }
}

impl Layer for Conv3d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.forward_in(x, &mut NnWorkspace::new())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = NnWorkspace::new();
        let g = ws.alloc_copy(grad_out);
        self.backward_in(g, &mut ws)
    }

    fn forward_in(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let out = self.forward_impl(x, ws);
        ws.prof_end(t, ProfKind::ConvFwd);
        out
    }

    fn backward_in(&mut self, grad_out: Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let g = self.backward_impl(grad_out, ws);
        ws.prof_end(t, ProfKind::ConvBwd);
        g
    }

    fn forward_batch_in(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let out = self.forward_batch_impl(x, ws);
        ws.prof_end(t, ProfKind::ConvFwd);
        out
    }

    fn backward_batch_in(&mut self, grad_out: Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let g = self.backward_batch_impl(grad_out, ws);
        ws.prof_end(t, ProfKind::ConvBwd);
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    fn conv(in_c: usize, out_c: usize, k: usize, seed: u64) -> Conv3d {
        Conv3d::new(in_c, out_c, k, &mut Initializer::new(seed))
    }

    #[test]
    fn output_shape_preserves_spatial_dims() {
        let mut c = conv(2, 5, 3, 0);
        let x = Tensor::zeros(&[2, 4, 6, 3]);
        assert_eq!(c.forward(&x).shape(), &[5, 4, 6, 3]);
        // Also for 1x1x1 kernels and odd sizes.
        let mut c1 = conv(2, 1, 1, 0);
        assert_eq!(c1.forward(&x).shape(), &[1, 4, 6, 3]);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // One input channel, one output channel, 3x3x3 kernel with a 1 at
        // the center: convolution must be the identity.
        let mut c = conv(1, 1, 3, 0);
        c.params_mut()[0].value.fill(0.0);
        // Index of weight [oc=0, ic=0, a=1, b=1, c=1] in the flat buffer.
        #[allow(clippy::erasing_op, clippy::identity_op)]
        let center = ((0 * 3 + 1) * 3 + 1) * 3 + 1;
        c.weight.value.data_mut()[center] = 1.0;
        c.bias.value.fill(0.0);
        let x = Tensor::from_fn4(&[1, 3, 3, 2], |_, a, b, d| (a * 100 + b * 10 + d) as f32);
        let y = c.forward(&x);
        assert_eq!(y, x);
    }

    #[test]
    fn bias_shifts_output() {
        let mut c = conv(1, 1, 1, 0);
        c.weight.value.fill(0.0);
        c.bias.value.fill(2.5);
        let x = Tensor::zeros(&[1, 2, 2, 2]);
        let y = c.forward(&x);
        assert!(y.data().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn zero_padding_at_borders() {
        // Kernel of all ones sums the 3x3x1 neighborhood; at a corner of a
        // 2x2x1 input only 4 cells exist.
        let mut c = conv(1, 1, 3, 0);
        c.weight.value.fill(1.0);
        c.bias.value.fill(0.0);
        let x = Tensor::from_vec(&[1, 2, 2, 1], vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let y = c.forward(&x);
        assert!(y.data().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut c = conv(2, 3, 3, 7);
        let x = Initializer::new(3).uniform(&[2, 3, 2, 2], 1.0);
        check_layer_gradients(&mut c, &x, 1e-2, 2e-2);
    }

    #[test]
    fn gradients_match_for_1x1_kernels() {
        let mut c = conv(3, 2, 1, 9);
        let x = Initializer::new(4).uniform(&[3, 2, 3, 2], 1.0);
        check_layer_gradients(&mut c, &x, 1e-2, 2e-2);
    }

    #[test]
    #[should_panic(expected = "odd kernel")]
    fn even_kernel_panics() {
        conv(1, 1, 2, 0);
    }

    /// Asserts two tensors are equal down to the exact bit pattern of every
    /// element (stricter than `==`, which treats `-0.0 == 0.0`).
    fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: element {i} differs ({x:e} vs {y:e})"
            );
        }
    }

    /// Cases covering k ∈ {1, 3}, odd and non-power-of-two spatial sizes,
    /// degenerate axes, and channel counts off the micro-kernel tile sizes.
    const ORACLE_CASES: &[(usize, usize, usize, [usize; 3])] = &[
        (1, 1, 3, [1, 1, 1]),
        (1, 1, 3, [1, 1, 7]),
        (2, 3, 3, [3, 5, 7]),
        (3, 4, 1, [2, 3, 5]),
        (7, 8, 3, [2, 11, 13]),
        (4, 2, 3, [5, 1, 9]),
        (2, 9, 3, [2, 6, 6]),
        (5, 1, 1, [3, 4, 5]),
        (8, 16, 3, [2, 9, 9]),
        (3, 5, 5, [3, 7, 6]),
    ];

    #[test]
    fn gemm_matches_naive_oracle_bitwise() {
        for (case, &(in_c, out_c, k, [d1, d2, d3])) in ORACLE_CASES.iter().enumerate() {
            let seed = 0x9E37 + case as u64;
            let proto = conv(in_c, out_c, k, seed);
            let x = Initializer::new(seed ^ 1).uniform(&[in_c, d1, d2, d3], 1.0);
            let gout = Initializer::new(seed ^ 2).uniform(&[out_c, d1, d2, d3], 1.0);

            let mut ws = NnWorkspace::new();
            let mut fast = proto.clone();
            let y_fast = fast.forward_in(&x, &mut ws);
            let gi_fast = fast.backward_in(ws.alloc_copy(&gout), &mut ws);

            let mut slow = proto.clone();
            slow.set_naive(true);
            let y_slow = slow.forward(&x);
            let gi_slow = slow.backward(&gout);

            let what = format!("case {case} ({in_c}->{out_c} k{k} {d1}x{d2}x{d3})");
            assert_bits_eq(&y_fast, &y_slow, &format!("{what} forward"));
            assert_bits_eq(&gi_fast, &gi_slow, &format!("{what} grad_in"));
            assert_bits_eq(
                &fast.weight.grad,
                &slow.weight.grad,
                &format!("{what} grad_w"),
            );
            assert_bits_eq(&fast.bias.grad, &slow.bias.grad, &format!("{what} grad_b"));
        }
    }

    #[test]
    fn batched_path_matches_sequential_bitwise() {
        // For every oracle case and batch size, the batched forward and
        // backward must be bit-identical, per sample, to running the
        // single-sample path over the samples in order — including the
        // accumulated weight/bias gradients.
        for (case, &(in_c, out_c, k, [d1, d2, d3])) in ORACLE_CASES.iter().enumerate() {
            for &bsz in &[1usize, 4, 16] {
                let seed = 0xBA7C + case as u64;
                let proto = conv(in_c, out_c, k, seed);
                let xs: Vec<Tensor> = (0..bsz)
                    .map(|b| {
                        Initializer::new(seed ^ (2 * b as u64 + 2))
                            .uniform(&[in_c, d1, d2, d3], 1.0)
                    })
                    .collect();
                let gs: Vec<Tensor> = (0..bsz)
                    .map(|b| {
                        Initializer::new(seed ^ (2 * b as u64 + 3))
                            .uniform(&[out_c, d1, d2, d3], 1.0)
                    })
                    .collect();

                // Sequential reference: one layer, samples in order,
                // gradients accumulating.
                let mut seq = proto.clone();
                let mut ws = NnWorkspace::new();
                let mut ys = Vec::new();
                let mut gis = Vec::new();
                for b in 0..bsz {
                    ys.push(seq.forward_in(&xs[b], &mut ws));
                    gis.push(seq.backward_in(ws.alloc_copy(&gs[b]), &mut ws));
                }

                // Batched run.
                let mut bat = proto.clone();
                let mut wsb = NnWorkspace::new();
                let x5 = Tensor::stack_batch(&xs.iter().collect::<Vec<_>>());
                let g5 = Tensor::stack_batch(&gs.iter().collect::<Vec<_>>());
                let y5 = bat.forward_batch_in(&x5, &mut wsb);
                let gi5 = bat.backward_batch_in(wsb.alloc_copy(&g5), &mut wsb);

                let what = format!("case {case} B{bsz} ({in_c}->{out_c} k{k} {d1}x{d2}x{d3})");
                for b in 0..bsz {
                    assert_bits_eq(&y5.unstack_sample(b), &ys[b], &format!("{what} y[{b}]"));
                    assert_bits_eq(
                        &gi5.unstack_sample(b),
                        &gis[b],
                        &format!("{what} grad_in[{b}]"),
                    );
                }
                assert_bits_eq(
                    &bat.weight.grad,
                    &seq.weight.grad,
                    &format!("{what} grad_w"),
                );
                assert_bits_eq(&bat.bias.grad, &seq.bias.grad, &format!("{what} grad_b"));

                // The batched naive oracle agrees too (same per-sample
                // seven-loop kernels, batched layout).
                let mut nv = proto.clone();
                nv.set_naive(true);
                let mut wsn = NnWorkspace::new();
                let yn = nv.forward_batch_in(&x5, &mut wsn);
                let gin = nv.backward_batch_in(wsn.alloc_copy(&g5), &mut wsn);
                assert_bits_eq(&yn, &y5, &format!("{what} naive y"));
                assert_bits_eq(&gin, &gi5, &format!("{what} naive grad_in"));
                assert_bits_eq(
                    &nv.weight.grad,
                    &bat.weight.grad,
                    &format!("{what} naive gw"),
                );
            }
        }
    }

    #[test]
    fn infer_in_matches_forward_without_cache() {
        let proto = conv(3, 5, 3, 11);
        let x = Initializer::new(12).uniform(&[3, 4, 5, 3], 1.0);
        let mut m = proto.clone();
        let y_ref = m.forward(&x);
        let shared = proto.clone();
        let mut ws = NnWorkspace::new();
        let y = shared.infer_in(&x, &mut ws);
        assert_bits_eq(&y, &y_ref, "infer_in");
    }

    #[test]
    fn gemm_stays_bitwise_identical_across_workspace_reuse() {
        // Repeated passes through one workspace (stale pool contents, grown
        // buffers) must not perturb results.
        let proto = conv(3, 6, 3, 42);
        let x = Initializer::new(7).uniform(&[3, 4, 5, 6], 1.0);
        let gout = Initializer::new(8).uniform(&[6, 4, 5, 6], 1.0);
        let mut fresh = proto.clone();
        let y0 = fresh.forward(&x);
        let gi0 = fresh.backward(&gout);

        let mut reused = proto.clone();
        let mut ws = NnWorkspace::new();
        for _ in 0..3 {
            reused.zero_grad();
            let y = reused.forward_in(&x, &mut ws);
            let gi = reused.backward_in(ws.alloc_copy(&gout), &mut ws);
            assert_bits_eq(&y, &y0, "reused forward");
            assert_bits_eq(&gi, &gi0, "reused grad_in");
            assert_bits_eq(&reused.weight.grad, &fresh.weight.grad, "reused grad_w");
            ws.free(y);
            ws.free(gi);
        }
    }

    /// Asserts two tensors agree under the documented SIMD tolerance
    /// (DESIGN.md §9): [`kernels::MAX_ULP`] ULPs or [`kernels::ABS_TOL`]
    /// absolute, elementwise, with exact shape equality.
    fn assert_close_ulp(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for (i, (&x, &y)) in a.data().iter().zip(b.data()).enumerate() {
            assert!(
                kernels::close_enough(x, y),
                "{what}: element {i} out of tolerance ({x:e} vs {y:e}, {} ulp)",
                kernels::ulp_distance(x, y)
            );
        }
    }

    /// A workspace with the SIMD kernel policy requested (which resolves
    /// to the scalar tiles when the build or host can't run them).
    fn simd_ws() -> NnWorkspace {
        let mut ws = NnWorkspace::new();
        ws.set_kernel_policy(crate::kernels::KernelPolicy::Simd);
        ws
    }

    #[test]
    fn kernel_policy_defaults_to_scalar_and_resolves_against_host() {
        let mut ws = NnWorkspace::new();
        assert_eq!(ws.kernel_policy(), crate::kernels::KernelPolicy::Scalar);
        assert!(!ws.simd_active(), "scalar policy never runs the wide lane");
        ws.set_kernel_policy(crate::kernels::KernelPolicy::Simd);
        assert_eq!(ws.kernel_policy(), crate::kernels::KernelPolicy::Simd);
        assert_eq!(
            ws.simd_active(),
            kernels::simd_available(),
            "Simd policy resolves to exactly what the build+host supports"
        );
        ws.set_kernel_policy(crate::kernels::KernelPolicy::Scalar);
        assert!(!ws.simd_active(), "policy change re-resolves");
    }

    /// Runtime-dispatch fallback: when the wide lane can't run (feature
    /// off, or an AVX2-less host), requesting `KernelPolicy::Simd` must
    /// produce bit-identical results and never touch the dispatch counter.
    /// On a host where the lane *can* run this degenerates into the
    /// dispatch-counter assertion instead — both sides are exercised by CI
    /// running the test with and without `--features simd`.
    #[test]
    fn simd_policy_falls_back_to_scalar_bits_when_unavailable() {
        let (in_c, out_c, k, [d1, d2, d3]) = (2usize, 3usize, 3usize, [3usize, 5, 7]);
        let proto = conv(in_c, out_c, k, 77);
        let x = Initializer::new(78).uniform(&[in_c, d1, d2, d3], 1.0);
        let gout = Initializer::new(79).uniform(&[out_c, d1, d2, d3], 1.0);

        let mut scalar = proto.clone();
        let mut ws_s = NnWorkspace::new();
        let y_s = scalar.forward_in(&x, &mut ws_s);
        let gi_s = scalar.backward_in(ws_s.alloc_copy(&gout), &mut ws_s);

        let mut simd = proto.clone();
        let mut ws_v = simd_ws();
        let y_v = simd.forward_in(&x, &mut ws_v);
        let gi_v = simd.backward_in(ws_v.alloc_copy(&gout), &mut ws_v);

        if kernels::simd_available() {
            assert!(
                ws_v.counters.get(Counter::GemmKernelSimd) >= 2,
                "wide lane must have dispatched on forward and backward"
            );
            assert_close_ulp(&y_v, &y_s, "simd forward vs scalar");
            assert_close_ulp(&gi_v, &gi_s, "simd grad_in vs scalar");
        } else {
            assert_eq!(
                ws_v.counters.get(Counter::GemmKernelSimd),
                0,
                "fallback must not claim the wide lane ran"
            );
            assert_bits_eq(&y_v, &y_s, "fallback forward");
            assert_bits_eq(&gi_v, &gi_s, "fallback grad_in");
            assert_bits_eq(&simd.weight.grad, &scalar.weight.grad, "fallback grad_w");
        }
    }

    /// ULP-tolerance oracle check for every SIMD kernel across the oracle
    /// case matrix: forward (direct, flat and panel dispatch), weight
    /// grad, bias grad and the input-gradient gather all stay within the
    /// documented tolerance of the naive oracle, and the dispatch counter
    /// proves the wide lane actually ran when the host supports it.
    #[test]
    fn simd_kernels_match_naive_oracle_within_ulp() {
        for (case, &(in_c, out_c, k, [d1, d2, d3])) in ORACLE_CASES.iter().enumerate() {
            let seed = 0x51D + case as u64;
            let proto = conv(in_c, out_c, k, seed);
            let x = Initializer::new(seed ^ 1).uniform(&[in_c, d1, d2, d3], 1.0);
            let gout = Initializer::new(seed ^ 2).uniform(&[out_c, d1, d2, d3], 1.0);

            let mut fast = proto.clone();
            let mut ws = simd_ws();
            let y_fast = fast.forward_in(&x, &mut ws);
            let gi_fast = fast.backward_in(ws.alloc_copy(&gout), &mut ws);

            let mut slow = proto.clone();
            slow.set_naive(true);
            let y_slow = slow.forward(&x);
            let gi_slow = slow.backward(&gout);

            let what = format!("simd case {case} ({in_c}->{out_c} k{k} {d1}x{d2}x{d3})");
            assert_close_ulp(&y_fast, &y_slow, &format!("{what} forward"));
            assert_close_ulp(&gi_fast, &gi_slow, &format!("{what} grad_in"));
            assert_close_ulp(
                &fast.weight.grad,
                &slow.weight.grad,
                &format!("{what} grad_w"),
            );
            assert_close_ulp(&fast.bias.grad, &slow.bias.grad, &format!("{what} grad_b"));
            if kernels::simd_available() {
                assert_eq!(
                    ws.counters.get(Counter::GemmKernelSimd),
                    2,
                    "{what}: one forward + one backward wide-lane dispatch"
                );
            } else {
                assert_eq!(ws.counters.get(Counter::GemmKernelSimd), 0, "{what}");
                assert_bits_eq(&y_fast, &y_slow, &format!("{what} fallback bits"));
            }
        }
    }

    /// Batched SIMD: the batched forward/backward under `KernelPolicy::
    /// Simd` stays within tolerance of the batched scalar path (which is
    /// itself bitwise-pinned to the sequential oracle above), including
    /// the global-row panel path (`d3 < NR`).
    #[test]
    fn simd_batched_path_matches_scalar_within_ulp() {
        // One direct-dispatch case and one panel-dispatch case.
        for &(in_c, out_c, k, [d1, d2, d3]) in &[ORACLE_CASES[4], ORACLE_CASES[2]] {
            let bsz = 4usize;
            let seed = 0x5BA7;
            let proto = conv(in_c, out_c, k, seed);
            let xs: Vec<Tensor> = (0..bsz)
                .map(|b| {
                    Initializer::new(seed ^ (2 * b as u64 + 2)).uniform(&[in_c, d1, d2, d3], 1.0)
                })
                .collect();
            let gs: Vec<Tensor> = (0..bsz)
                .map(|b| {
                    Initializer::new(seed ^ (2 * b as u64 + 3)).uniform(&[out_c, d1, d2, d3], 1.0)
                })
                .collect();
            let x5 = Tensor::stack_batch(&xs.iter().collect::<Vec<_>>());
            let g5 = Tensor::stack_batch(&gs.iter().collect::<Vec<_>>());

            let mut sc = proto.clone();
            let mut ws_s = NnWorkspace::new();
            let y_s = sc.forward_batch_in(&x5, &mut ws_s);
            let gi_s = sc.backward_batch_in(ws_s.alloc_copy(&g5), &mut ws_s);

            let mut sv = proto.clone();
            let mut ws_v = simd_ws();
            let y_v = sv.forward_batch_in(&x5, &mut ws_v);
            let gi_v = sv.backward_batch_in(ws_v.alloc_copy(&g5), &mut ws_v);

            let what = format!("simd batch ({in_c}->{out_c} k{k} {d1}x{d2}x{d3})");
            assert_close_ulp(&y_v, &y_s, &format!("{what} y"));
            assert_close_ulp(&gi_v, &gi_s, &format!("{what} grad_in"));
            assert_close_ulp(&sv.weight.grad, &sc.weight.grad, &format!("{what} grad_w"));
            assert_close_ulp(&sv.bias.grad, &sc.bias.grad, &format!("{what} grad_b"));
            if kernels::simd_available() {
                assert_eq!(ws_v.counters.get(Counter::GemmKernelSimd), 2, "{what}");
            } else {
                assert_bits_eq(&y_v, &y_s, &format!("{what} fallback bits"));
            }
        }
    }

    #[test]
    fn inference_workspace_skips_backward_cache() {
        let mut c = conv(2, 2, 3, 1);
        let x = Initializer::new(2).uniform(&[2, 3, 3, 3], 1.0);
        let mut ws = NnWorkspace::new();
        ws.training = false;
        let y_inf = c.forward_in(&x, &mut ws);
        assert!(c.cache_input.is_none());
        let y_train = c.forward(&x);
        assert_bits_eq(&y_inf, &y_train, "inference forward");
        assert!(c.cache_input.is_some());
    }
}
