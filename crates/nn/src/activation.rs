//! Elementwise activations: ReLU and sigmoid.

use crate::layer::Layer;
use crate::tensor::Tensor;
use crate::workspace::{NnWorkspace, ProfKind};

/// Rectified linear unit, `y = max(x, 0)`.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
    /// Retired mask storage, recycled across forward/backward cycles.
    spare_mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }

    /// Consuming forward: clamps `x` in place (no output buffer at all).
    /// Used by the residual blocks, which own their intermediates.
    pub fn forward_owned(&mut self, mut x: Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        if ws.training() {
            let mut mask = std::mem::take(&mut self.spare_mask);
            mask.clear();
            mask.extend(x.data().iter().map(|&v| v > 0.0));
            self.mask = Some(mask);
        } else {
            self.mask = None;
        }
        for v in x.data_mut() {
            *v = v.max(0.0);
        }
        ws.prof_end(t, ProfKind::ActFwd);
        x
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut ws = NnWorkspace::new();
        self.forward_in(x, &mut ws)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = NnWorkspace::new();
        let g = ws.alloc_copy(grad_out);
        self.backward_in(g, &mut ws)
    }

    fn forward_in(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        let y = ws.alloc_copy(x);
        self.forward_owned(y, ws)
    }

    fn backward_in(&mut self, mut grad_out: Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let mask = self.mask.take().expect("relu backward without forward");
        for (gv, &keep) in grad_out.data_mut().iter_mut().zip(&mask) {
            if !keep {
                *gv = 0.0;
            }
        }
        self.spare_mask = mask;
        ws.prof_end(t, ProfKind::ActBwd);
        grad_out
    }

    // Elementwise and shape-agnostic: the batched rank-5 layout needs no
    // special handling, and the mask cache is a flat element vector either
    // way.
    fn forward_batch_in(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        self.forward_in(x, ws)
    }

    fn backward_batch_in(&mut self, grad_out: Tensor, ws: &mut NnWorkspace) -> Tensor {
        self.backward_in(grad_out, ws)
    }
}

/// Logistic sigmoid, `y = 1 / (1 + e^{-x})` — the paper's output activation
/// ensuring every Steiner-point probability lies in `(0, 1)` (Section 3.3).
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    out: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid::default()
    }
}

/// The scalar sigmoid function, exposed for loss computations.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut ws = NnWorkspace::new();
        self.forward_in(x, &mut ws)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = NnWorkspace::new();
        let g = ws.alloc_copy(grad_out);
        self.backward_in(g, &mut ws)
    }

    fn forward_in(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let mut y = ws.alloc(x.shape());
        for (o, &v) in y.data_mut().iter_mut().zip(x.data()) {
            *o = sigmoid(v);
        }
        if ws.training() {
            let cache = ws.alloc_copy(&y);
            if let Some(old) = self.out.replace(cache) {
                ws.free(old);
            }
        } else {
            self.out = None;
        }
        ws.prof_end(t, ProfKind::ActFwd);
        y
    }

    fn backward_in(&mut self, mut grad_out: Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let y = self.out.take().expect("sigmoid backward without forward");
        for (gv, &yv) in grad_out.data_mut().iter_mut().zip(y.data()) {
            *gv *= yv * (1.0 - yv);
        }
        ws.free(y);
        ws.prof_end(t, ProfKind::ActBwd);
        grad_out
    }

    // Elementwise and shape-agnostic, like ReLU.
    fn forward_batch_in(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        self.forward_in(x, ws)
    }

    fn backward_batch_in(&mut self, grad_out: Tensor, ws: &mut NnWorkspace) -> Tensor {
        self.backward_in(grad_out, ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn relu_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 0.5, 3.0]).unwrap();
        let y = r.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 3.0]);
        let g = r.backward(&Tensor::from_vec(&[4], vec![1.0; 4]).unwrap());
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn relu_mask_storage_is_recycled() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(&[3], vec![-1.0, 2.0, 3.0]).unwrap();
        let g = Tensor::from_vec(&[3], vec![1.0; 3]).unwrap();
        let mut ws = NnWorkspace::new();
        let y = r.forward_in(&x, &mut ws);
        ws.free(y);
        let gi = r.backward_in(ws.alloc_copy(&g), &mut ws);
        assert_eq!(gi.data(), &[0.0, 1.0, 1.0]);
        let ptr = r.spare_mask.as_ptr();
        ws.free(gi);
        // Second cycle reuses the retired mask storage.
        let y = r.forward_in(&x, &mut ws);
        assert_eq!(r.mask.as_ref().unwrap().as_ptr(), ptr);
        ws.free(y);
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(&[3], vec![-10.0, 0.0, 10.0]).unwrap();
        let y = s.forward(&x);
        assert!(y.data()[0] > 0.0 && y.data()[0] < 0.001);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] < 1.0 && y.data()[2] > 0.999);
    }

    #[test]
    fn relu_gradcheck_away_from_kink() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(&[6], vec![-2.0, -1.0, -0.5, 0.5, 1.0, 2.0]).unwrap();
        check_layer_gradients(&mut r, &x, 1e-3, 1e-3);
    }

    #[test]
    fn sigmoid_gradcheck() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(&[5], vec![-1.5, -0.3, 0.0, 0.7, 2.0]).unwrap();
        check_layer_gradients(&mut s, &x, 1e-3, 2e-3);
    }
}
