//! Elementwise activations: ReLU and sigmoid.

use crate::layer::Layer;
use crate::tensor::Tensor;

/// Rectified linear unit, `y = max(x, 0)`.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.take().expect("relu backward without forward");
        let mut g = grad_out.clone();
        for (gv, &keep) in g.data_mut().iter_mut().zip(&mask) {
            if !keep {
                *gv = 0.0;
            }
        }
        g
    }
}

/// Logistic sigmoid, `y = 1 / (1 + e^{-x})` — the paper's output activation
/// ensuring every Steiner-point probability lies in `(0, 1)` (Section 3.3).
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    out: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid::default()
    }
}

/// The scalar sigmoid function, exposed for loss computations.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let y = x.map(sigmoid);
        self.out = Some(y.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.out.take().expect("sigmoid backward without forward");
        let mut g = grad_out.clone();
        for (gv, &yv) in g.data_mut().iter_mut().zip(y.data()) {
            *gv *= yv * (1.0 - yv);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn relu_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 0.5, 3.0]).unwrap();
        let y = r.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 3.0]);
        let g = r.backward(&Tensor::from_vec(&[4], vec![1.0; 4]).unwrap());
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(&[3], vec![-10.0, 0.0, 10.0]).unwrap();
        let y = s.forward(&x);
        assert!(y.data()[0] > 0.0 && y.data()[0] < 0.001);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] < 1.0 && y.data()[2] > 0.999);
    }

    #[test]
    fn relu_gradcheck_away_from_kink() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(&[6], vec![-2.0, -1.0, -0.5, 0.5, 1.0, 2.0]).unwrap();
        check_layer_gradients(&mut r, &x, 1e-3, 1e-3);
    }

    #[test]
    fn sigmoid_gradcheck() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(&[5], vec![-1.5, -0.3, 0.0, 0.7, 2.0]).unwrap();
        check_layer_gradients(&mut s, &x, 1e-3, 2e-3);
    }
}
