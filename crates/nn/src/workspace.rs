//! The zero-allocation scratch arena of the NN hot path.
//!
//! Selector inference runs once per MCTS search and selector training runs
//! `UNet3d::forward`/`backward` once per sample; before this workspace
//! existed, every layer allocated fresh [`Tensor`]s (outputs, caches,
//! clones) on each of those calls. An [`NnWorkspace`] owns all of that
//! reusable state:
//!
//! * a **tensor pool** — layers acquire output/cache storage with
//!   [`NnWorkspace::alloc`] and return it with [`NnWorkspace::free`], so
//!   after warm-up a forward/backward pass performs no heap allocation;
//! * the **tap-offset table** and the padded/transposed gradient buffers
//!   of the implicit-im2col GEMM convolution kernels (see
//!   [`conv3d`](crate::conv3d));
//! * GroupNorm backward scratch;
//! * an optional per-layer-kind [`Profile`] used by the `unet_throughput`
//!   bench to attribute time to conv/norm/activation/pool/upsample.
//!
//! Ownership follows the `RouteContext` model of DESIGN.md: whoever owns an
//! inference or training loop owns one workspace (`RouteContext` embeds one
//! for the selector path, `Trainer` owns one per fit loop, and each
//! `parallel` worker carries its own inside its context). Workspaces are
//! never shared across threads. All workspace state is scratch: reusing a
//! workspace never changes results, only allocation behavior.

use std::time::Instant;

use crate::tensor::Tensor;

/// Layer-kind/direction buckets for the optional profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfKind {
    /// Convolution forward (incl. `1×1×1` heads and projections).
    ConvFwd,
    /// Convolution backward.
    ConvBwd,
    /// GroupNorm forward.
    NormFwd,
    /// GroupNorm backward.
    NormBwd,
    /// Activation (ReLU/sigmoid) forward.
    ActFwd,
    /// Activation backward.
    ActBwd,
    /// Max-pool forward.
    PoolFwd,
    /// Max-pool backward.
    PoolBwd,
    /// Upsample forward.
    UpFwd,
    /// Upsample backward.
    UpBwd,
}

/// Number of [`ProfKind`] buckets.
pub const PROF_KINDS: usize = 10;

/// Names matching the [`ProfKind`] discriminants, for reports.
pub const PROF_NAMES: [&str; PROF_KINDS] = [
    "conv fwd",
    "conv bwd",
    "norm fwd",
    "norm bwd",
    "act fwd",
    "act bwd",
    "pool fwd",
    "pool bwd",
    "upsample fwd",
    "upsample bwd",
];

/// Accumulated per-kind wall-clock, filled when profiling is enabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct Profile {
    /// Seconds per [`ProfKind`] (indexed by discriminant order).
    pub secs: [f64; PROF_KINDS],
}

/// The reusable scratch arena threaded through `forward_in`/`backward_in`
/// (see [`Layer`](crate::layer::Layer)).
#[derive(Debug, Clone)]
pub struct NnWorkspace {
    /// Recycled tensor storage, LIFO.
    pool: Vec<Vec<f32>>,
    /// Per-tap padded-volume offsets (the K axis of the convolution's
    /// implicit patch matrix).
    pub(crate) tap_off: Vec<usize>,
    /// im2col patch panel of the small-grid convolution forward path.
    pub(crate) im2col: Vec<f32>,
    /// Zero-padded `grad_out` of the convolution input-gradient gather.
    pub(crate) g_pad: Vec<f32>,
    /// `grad_out` transposed to `[spatial][out_c]` for the vectorized
    /// weight/bias-gradient kernels.
    pub(crate) g_t: Vec<f32>,
    /// GroupNorm backward `dxhat` scratch.
    pub(crate) dxhat: Vec<f32>,
    /// `false` skips backward caches (inference mode). Set by
    /// [`UNet3d::predict_in`](crate::unet::UNet3d::predict_in); defaults to
    /// `true` so `forward_in`/`backward_in` pairs always work.
    pub(crate) training: bool,
    profiling: bool,
    profile: Profile,
}

impl Default for NnWorkspace {
    fn default() -> Self {
        NnWorkspace::new()
    }
}

impl NnWorkspace {
    /// Creates an empty workspace; all buffers grow on first use.
    pub fn new() -> Self {
        NnWorkspace {
            pool: Vec::new(),
            tap_off: Vec::new(),
            im2col: Vec::new(),
            g_pad: Vec::new(),
            g_t: Vec::new(),
            dxhat: Vec::new(),
            training: true,
            profiling: false,
            profile: Profile::default(),
        }
    }

    /// Acquires a zeroed tensor of the given shape from the pool.
    pub fn alloc(&mut self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        let mut data = self.pool.pop().unwrap_or_default();
        data.clear();
        data.resize(n, 0.0);
        Tensor::from_vec(shape, data).expect("pool tensor shape/len agree")
    }

    /// Acquires a tensor holding a copy of `src` from the pool.
    pub fn alloc_copy(&mut self, src: &Tensor) -> Tensor {
        let mut t = self.alloc(src.shape());
        t.data_mut().copy_from_slice(src.data());
        t
    }

    /// Returns a tensor's storage to the pool for reuse.
    pub fn free(&mut self, t: Tensor) {
        self.pool.push(t.into_data());
    }

    /// Whether backward caches are being recorded (`true` outside
    /// [`UNet3d::predict_in`](crate::unet::UNet3d::predict_in)).
    pub fn training(&self) -> bool {
        self.training
    }

    /// Takes the im2col panel buffer, sized to at least `len` (callers
    /// return it via [`NnWorkspace::put_im2col`]; taking keeps the borrow
    /// checker out of kernels that also index the workspace).
    pub(crate) fn take_im2col(&mut self, len: usize) -> Vec<f32> {
        let mut b = std::mem::take(&mut self.im2col);
        if b.len() < len {
            b.resize(len, 0.0);
        }
        b
    }

    /// Returns the im2col panel buffer.
    pub(crate) fn put_im2col(&mut self, b: Vec<f32>) {
        self.im2col = b;
    }

    /// Enables per-layer-kind profiling (cleared stats).
    pub fn enable_profiling(&mut self) {
        self.profiling = true;
        self.profile = Profile::default();
    }

    /// Disables profiling, returning the accumulated stats.
    pub fn take_profile(&mut self) -> Profile {
        self.profiling = false;
        std::mem::take(&mut self.profile)
    }

    /// Starts a profiled span; pair with [`NnWorkspace::prof_end`].
    #[inline]
    pub(crate) fn prof_start(&self) -> Option<Instant> {
        if self.profiling {
            // lint: timing-ok(opt-in bench profiling; results never depend on it)
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends a profiled span started by [`NnWorkspace::prof_start`].
    #[inline]
    pub(crate) fn prof_end(&mut self, start: Option<Instant>, kind: ProfKind) {
        if let Some(t0) = start {
            self.profile.secs[kind as usize] += t0.elapsed().as_secs_f64();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_zeroed_tensors_and_reuses_storage() {
        let mut ws = NnWorkspace::new();
        let mut t = ws.alloc(&[2, 3]);
        assert_eq!(t.sum(), 0.0);
        t.fill(7.0);
        let ptr = t.data().as_ptr();
        ws.free(t);
        // Same storage comes back, re-zeroed.
        let t2 = ws.alloc(&[3, 2]);
        assert_eq!(t2.data().as_ptr(), ptr);
        assert_eq!(t2.sum(), 0.0);
    }

    #[test]
    fn alloc_copy_matches_source() {
        let mut ws = NnWorkspace::new();
        let src = Tensor::from_vec(&[4], vec![1.0, -2.0, 3.0, 4.0]).unwrap();
        let c = ws.alloc_copy(&src);
        assert_eq!(c, src);
    }

    #[test]
    fn profiling_accumulates_spans() {
        let mut ws = NnWorkspace::new();
        assert!(ws.prof_start().is_none());
        ws.enable_profiling();
        let t = ws.prof_start();
        assert!(t.is_some());
        ws.prof_end(t, ProfKind::ConvFwd);
        let p = ws.take_profile();
        assert!(p.secs[ProfKind::ConvFwd as usize] >= 0.0);
        assert!(ws.prof_start().is_none());
    }
}
