//! The zero-allocation scratch arena of the NN hot path.
//!
//! Selector inference runs once per MCTS search and selector training runs
//! `UNet3d::forward`/`backward` once per sample; before this workspace
//! existed, every layer allocated fresh [`Tensor`]s (outputs, caches,
//! clones) on each of those calls. An [`NnWorkspace`] owns all of that
//! reusable state:
//!
//! * a **tensor pool** — layers acquire output/cache storage with
//!   [`NnWorkspace::alloc`] and return it with [`NnWorkspace::free`], so
//!   after warm-up a forward/backward pass performs no heap allocation;
//! * the **tap-offset table** and the padded/transposed gradient buffers
//!   of the implicit-im2col GEMM convolution kernels (see
//!   [`conv3d`](crate::conv3d));
//! * GroupNorm backward scratch;
//! * the Tier A telemetry [`CounterSet`] of the NN subsystem (pool
//!   hits/misses, GEMM dispatch mix, per-U-Net-layer MACs) plus an
//!   optional per-layer-kind Tier B [`SpanSet`] used by the
//!   `unet_throughput` bench to attribute time to
//!   conv/norm/activation/pool/upsample (real durations only under the
//!   `telemetry-timing` feature of `oarsmt-telemetry`).
//!
//! Ownership follows the `RouteContext` model of DESIGN.md: whoever owns an
//! inference or training loop owns one workspace (`RouteContext` embeds one
//! for the selector path, `Trainer` owns one per fit loop, and each
//! `parallel` worker carries its own inside its context). Workspaces are
//! never shared across threads. All workspace state is scratch: reusing a
//! workspace never changes results, only allocation behavior.

use oarsmt_telemetry::{Counter, CounterSet, Span, SpanSet, SpanStart};

use crate::kernels::{self, KernelPolicy};
use crate::tensor::Tensor;

/// Layer-kind/direction buckets for the optional profile (mapped onto the
/// statically registered `oarsmt-telemetry` [`Span`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfKind {
    /// Convolution forward (incl. `1×1×1` heads and projections).
    ConvFwd,
    /// Convolution backward.
    ConvBwd,
    /// GroupNorm forward.
    NormFwd,
    /// GroupNorm backward.
    NormBwd,
    /// Activation (ReLU/sigmoid) forward.
    ActFwd,
    /// Activation backward.
    ActBwd,
    /// Max-pool forward.
    PoolFwd,
    /// Max-pool backward.
    PoolBwd,
    /// Upsample forward.
    UpFwd,
    /// Upsample backward.
    UpBwd,
}

impl ProfKind {
    /// The telemetry span this bucket records into.
    #[must_use]
    pub fn span(self) -> Span {
        match self {
            ProfKind::ConvFwd => Span::NnConvFwd,
            ProfKind::ConvBwd => Span::NnConvBwd,
            ProfKind::NormFwd => Span::NnNormFwd,
            ProfKind::NormBwd => Span::NnNormBwd,
            ProfKind::ActFwd => Span::NnActFwd,
            ProfKind::ActBwd => Span::NnActBwd,
            ProfKind::PoolFwd => Span::NnPoolFwd,
            ProfKind::PoolBwd => Span::NnPoolBwd,
            ProfKind::UpFwd => Span::NnUpFwd,
            ProfKind::UpBwd => Span::NnUpBwd,
        }
    }
}

/// The reusable scratch arena threaded through `forward_in`/`backward_in`
/// (see [`Layer`](crate::layer::Layer)).
#[derive(Debug, Clone)]
pub struct NnWorkspace {
    /// Recycled tensor storage, LIFO. Whole tensors are pooled (shape and
    /// data vectors both), so a warm [`NnWorkspace::alloc`] performs zero
    /// heap allocation — including the shape metadata.
    pool: Vec<Tensor>,
    /// Per-tap padded-volume offsets (the K axis of the convolution's
    /// implicit patch matrix).
    pub(crate) tap_off: Vec<usize>,
    /// im2col patch panel of the small-grid convolution forward path.
    pub(crate) im2col: Vec<f32>,
    /// Zero-padded `grad_out` of the convolution input-gradient gather.
    pub(crate) g_pad: Vec<f32>,
    /// `grad_out` transposed to `[spatial][out_c]` for the vectorized
    /// weight/bias-gradient kernels.
    pub(crate) g_t: Vec<f32>,
    /// GroupNorm backward `dxhat` scratch.
    pub(crate) dxhat: Vec<f32>,
    /// `false` skips backward caches (inference mode). Set by
    /// [`UNet3d::predict_in`](crate::unet::UNet3d::predict_in); defaults to
    /// `true` so `forward_in`/`backward_in` pairs always work.
    pub(crate) training: bool,
    profiling: bool,
    spans: SpanSet,
    /// Tier A telemetry of the NN subsystem: pool hits/misses, GEMM
    /// dispatch per path, per-U-Net-layer MACs. Always on; monotone.
    pub counters: CounterSet,
    /// The counter index MACs are attributed to (`Counter::MacsOther`
    /// outside a tagged U-Net layer; `UNet3d::forward_in`/`backward_in`
    /// retag it per block via [`NnWorkspace::set_mac_slot`]).
    pub(crate) mac_slot: usize,
    /// Which kernel family conv GEMM calls route through (default
    /// [`KernelPolicy::Scalar`], the bit-identical family).
    kernel_policy: KernelPolicy,
    /// The policy resolved against the build and host, cached at
    /// [`NnWorkspace::set_kernel_policy`] time: `true` iff the AVX2+FMA
    /// lane will actually run (the kernels branch on this plain bool, not
    /// on a CPUID probe).
    simd_active: bool,
}

impl Default for NnWorkspace {
    fn default() -> Self {
        NnWorkspace::new()
    }
}

impl NnWorkspace {
    /// Creates an empty workspace; all buffers grow on first use.
    pub fn new() -> Self {
        NnWorkspace {
            pool: Vec::new(),
            tap_off: Vec::new(),
            im2col: Vec::new(),
            g_pad: Vec::new(),
            g_t: Vec::new(),
            dxhat: Vec::new(),
            training: true,
            profiling: false,
            spans: SpanSet::new(),
            counters: CounterSet::new(),
            mac_slot: Counter::MacsOther as usize,
            kernel_policy: KernelPolicy::Scalar,
            simd_active: false,
        }
    }

    /// Selects the kernel family for conv GEMM calls through this
    /// workspace. [`KernelPolicy::Simd`] engages the AVX2+FMA tiles only
    /// when the `simd` feature is compiled in and the host supports them
    /// (checked once here, cached in [`NnWorkspace::simd_active`]);
    /// otherwise it silently falls back to the scalar tiles, so results
    /// stay bit-identical to the naive oracle.
    pub fn set_kernel_policy(&mut self, policy: KernelPolicy) {
        self.kernel_policy = policy;
        self.simd_active = kernels::resolve(policy);
    }

    /// The requested kernel policy (not necessarily what runs — see
    /// [`NnWorkspace::simd_active`]).
    #[must_use]
    pub fn kernel_policy(&self) -> KernelPolicy {
        self.kernel_policy
    }

    /// Whether conv GEMM calls through this workspace run the AVX2+FMA
    /// lane: the requested policy resolved against build features and the
    /// host CPU.
    #[inline]
    #[must_use]
    pub fn simd_active(&self) -> bool {
        self.simd_active
    }

    /// Acquires a zeroed tensor of the given shape from the pool.
    pub fn alloc(&mut self, shape: &[usize]) -> Tensor {
        let mut t = match self.pool.pop() {
            Some(t) => {
                self.counters.bump(Counter::NnPoolHits);
                t
            }
            None => {
                self.counters.bump(Counter::NnPoolMisses);
                Tensor::pool_seed()
            }
        };
        t.refit(shape);
        t
    }

    /// Acquires a tensor holding a copy of `src` from the pool.
    pub fn alloc_copy(&mut self, src: &Tensor) -> Tensor {
        let mut t = self.alloc(src.shape());
        t.data_mut().copy_from_slice(src.data());
        t
    }

    /// Returns a tensor's storage (shape and data vectors) to the pool for
    /// reuse.
    pub fn free(&mut self, t: Tensor) {
        self.pool.push(t);
    }

    /// Whether backward caches are being recorded (`true` outside
    /// [`UNet3d::predict_in`](crate::unet::UNet3d::predict_in)).
    pub fn training(&self) -> bool {
        self.training
    }

    /// Takes the im2col panel buffer, sized to at least `len` (callers
    /// return it via [`NnWorkspace::put_im2col`]; taking keeps the borrow
    /// checker out of kernels that also index the workspace).
    pub(crate) fn take_im2col(&mut self, len: usize) -> Vec<f32> {
        let mut b = std::mem::take(&mut self.im2col);
        if b.len() < len {
            b.resize(len, 0.0);
        }
        b
    }

    /// Returns the im2col panel buffer.
    pub(crate) fn put_im2col(&mut self, b: Vec<f32>) {
        self.im2col = b;
    }

    /// Enables per-layer-kind profiling (cleared stats). Durations are
    /// non-zero only when `oarsmt-telemetry` is built with its
    /// `telemetry-timing` feature; counts are recorded either way.
    pub fn enable_profiling(&mut self) {
        self.profiling = true;
        self.spans = SpanSet::new();
    }

    /// Disables profiling, returning the accumulated per-layer spans.
    pub fn take_spans(&mut self) -> SpanSet {
        self.profiling = false;
        std::mem::take(&mut self.spans)
    }

    /// Starts a profiled span; pair with [`NnWorkspace::prof_end`]. The
    /// clock read (if any) happens inside `oarsmt-telemetry` behind its
    /// feature gate — this crate never observes time.
    #[inline]
    pub(crate) fn prof_start(&self) -> SpanStart {
        if self.profiling {
            SpanStart::now()
        } else {
            SpanStart::disabled()
        }
    }

    /// Ends a profiled span started by [`NnWorkspace::prof_start`].
    #[inline]
    pub(crate) fn prof_end(&mut self, start: SpanStart, kind: ProfKind) {
        if self.profiling {
            self.spans.stop(start, kind.span());
        }
    }

    /// Retags the MAC-attribution counter slot, returning the previous tag
    /// (callers restore it on the way out of a layer).
    #[inline]
    pub fn set_mac_slot(&mut self, c: Counter) -> usize {
        std::mem::replace(&mut self.mac_slot, c as usize)
    }

    /// Restores a MAC-attribution slot returned by
    /// [`NnWorkspace::set_mac_slot`].
    #[inline]
    pub fn restore_mac_slot(&mut self, slot: usize) {
        self.mac_slot = slot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_zeroed_tensors_and_reuses_storage() {
        let mut ws = NnWorkspace::new();
        let mut t = ws.alloc(&[2, 3]);
        assert_eq!(t.sum(), 0.0);
        t.fill(7.0);
        let ptr = t.data().as_ptr();
        ws.free(t);
        // Same storage comes back, re-zeroed.
        let t2 = ws.alloc(&[3, 2]);
        assert_eq!(t2.data().as_ptr(), ptr);
        assert_eq!(t2.sum(), 0.0);
    }

    #[test]
    fn alloc_copy_matches_source() {
        let mut ws = NnWorkspace::new();
        let src = Tensor::from_vec(&[4], vec![1.0, -2.0, 3.0, 4.0]).unwrap();
        let c = ws.alloc_copy(&src);
        assert_eq!(c, src);
    }

    #[test]
    fn profiling_accumulates_spans() {
        let mut ws = NnWorkspace::new();
        let t = ws.prof_start();
        ws.prof_end(t, ProfKind::ConvFwd);
        assert!(
            ws.take_spans().is_empty(),
            "disabled profiling records nothing"
        );
        ws.enable_profiling();
        let t = ws.prof_start();
        ws.prof_end(t, ProfKind::ConvFwd);
        let spans = ws.take_spans();
        assert_eq!(spans.get(Span::NnConvFwd).count, 1);
        let t = ws.prof_start();
        ws.prof_end(t, ProfKind::ConvFwd);
        assert!(ws.take_spans().is_empty(), "take_spans disables profiling");
    }

    #[test]
    fn pool_hits_and_misses_are_counted() {
        let mut ws = NnWorkspace::new();
        let t = ws.alloc(&[4]); // miss: empty pool
        ws.free(t);
        let t = ws.alloc(&[2, 2]); // hit: recycled storage
        ws.free(t);
        assert_eq!(ws.counters.get(Counter::NnPoolMisses), 1);
        assert_eq!(ws.counters.get(Counter::NnPoolHits), 1);
    }

    #[test]
    fn mac_slot_retag_restores() {
        let mut ws = NnWorkspace::new();
        assert_eq!(ws.mac_slot, Counter::MacsOther as usize);
        let prev = ws.set_mac_slot(Counter::MacsEnc1);
        assert_eq!(ws.mac_slot, Counter::MacsEnc1 as usize);
        ws.restore_mac_slot(prev);
        assert_eq!(ws.mac_slot, Counter::MacsOther as usize);
    }
}
