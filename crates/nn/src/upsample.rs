//! Nearest-neighbor 3D upsampling to an arbitrary target shape.
//!
//! The decoder path of the U-Net must restore whatever spatial shape the
//! matching encoder level had — which, with ceil-mode pooling of arbitrary
//! inputs, is not always exactly double. [`Upsample3d`] therefore maps to an
//! explicit target shape using nearest-neighbor indexing, and its backward
//! pass accumulates gradients onto the source cells.

use crate::layer::Layer;
use crate::tensor::Tensor;
use crate::workspace::{NnWorkspace, ProfKind};

/// Nearest-neighbor upsampling to a fixed target spatial shape.
#[derive(Debug, Clone)]
pub struct Upsample3d {
    target: [usize; 3],
    in_shape: Option<[usize; 4]>,
    /// `0` after a rank-4 forward; the batch size after a batched rank-5
    /// forward (which way to rebuild the input-gradient shape).
    in_batch: usize,
}

impl Upsample3d {
    /// Creates an upsampler producing `[c, target[0], target[1], target[2]]`
    /// outputs.
    pub fn to_shape(target: [usize; 3]) -> Self {
        Upsample3d {
            target,
            in_shape: None,
            in_batch: 0,
        }
    }

    /// Changes the target shape (the U-Net reuses one upsampler per level
    /// across inputs of different sizes).
    pub fn set_target(&mut self, target: [usize; 3]) {
        self.target = target;
    }

    /// Source index for an output index along one axis.
    #[inline]
    fn src(i: usize, in_d: usize, out_d: usize) -> usize {
        (i * in_d / out_d).min(in_d - 1)
    }

    /// Stateless upsample to `target` for the shared-selector inference
    /// path. Works on rank-4 and (channel-major) rank-5 inputs alike.
    pub fn infer_apply(x: &Tensor, target: [usize; 3], ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let s = x.shape();
        let n = s.len();
        let c_eff: usize = s[..n - 3].iter().product();
        let [o1, o2, o3] = target;
        // Fixed rank ≤ 5: build the output shape on the stack so the warm
        // inference loop stays allocation-free.
        let mut shape = [0usize; 5];
        shape[..n].copy_from_slice(s);
        shape[n - 3..n].copy_from_slice(&target);
        let mut out = ws.alloc(&shape[..n]);
        up_core(
            x.data(),
            c_eff,
            [s[n - 3], s[n - 2], s[n - 1]],
            [o1, o2, o3],
            out.data_mut(),
        );
        ws.prof_end(t, ProfKind::UpFwd);
        out
    }
}

/// The nearest-neighbor kernel: every leading axis is an independent
/// volume (`c` for rank-4, `c·b` channel-major for rank-5 — per-sample
/// bit identity is structural because outputs are pure copies).
fn up_core(xd: &[f32], c_eff: usize, din: [usize; 3], dout: [usize; 3], od: &mut [f32]) {
    let [d1, d2, d3] = din;
    let [o1, o2, o3] = dout;
    for ci in 0..c_eff {
        for x1 in 0..o1 {
            let ix = Upsample3d::src(x1, d1, o1);
            for y in 0..o2 {
                let iy = Upsample3d::src(y, d2, o2);
                let xrow = &xd[((ci * d1 + ix) * d2 + iy) * d3..][..d3];
                let orow = &mut od[((ci * o1 + x1) * o2 + y) * o3..][..o3];
                for (z, o) in orow.iter_mut().enumerate() {
                    *o = xrow[Upsample3d::src(z, d3, o3)];
                }
            }
        }
    }
}

/// Backward of [`up_core`]: accumulates replicated gradients onto source
/// cells. Output cells of one source cell are visited in the same ascending
/// order regardless of leading-axis count, so the per-element `+=` order
/// matches the sequential per-sample pass bit for bit.
fn up_back_core(gd: &[f32], c_eff: usize, din: [usize; 3], dout: [usize; 3], gi: &mut [f32]) {
    let [d1, d2, d3] = din;
    let [o1, o2, o3] = dout;
    for ci in 0..c_eff {
        for x1 in 0..o1 {
            let ix = Upsample3d::src(x1, d1, o1);
            for y in 0..o2 {
                let iy = Upsample3d::src(y, d2, o2);
                let grow = &gd[((ci * o1 + x1) * o2 + y) * o3..][..o3];
                let irow = &mut gi[((ci * d1 + ix) * d2 + iy) * d3..][..d3];
                for (z, &g) in grow.iter().enumerate() {
                    irow[Upsample3d::src(z, d3, o3)] += g;
                }
            }
        }
    }
}

impl Layer for Upsample3d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut ws = NnWorkspace::new();
        self.forward_in(x, &mut ws)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = NnWorkspace::new();
        let g = ws.alloc_copy(grad_out);
        self.backward_in(g, &mut ws)
    }

    fn forward_in(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let s = x.shape();
        assert_eq!(s.len(), 4, "upsample expects [c, d1, d2, d3]");
        let (c, d1, d2, d3) = (s[0], s[1], s[2], s[3]);
        let [o1, o2, o3] = self.target;
        let mut out = ws.alloc(&[c, o1, o2, o3]);
        up_core(x.data(), c, [d1, d2, d3], self.target, out.data_mut());
        self.in_shape = Some([c, d1, d2, d3]);
        self.in_batch = 0;
        ws.prof_end(t, ProfKind::UpFwd);
        out
    }

    fn backward_in(&mut self, grad_out: Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let in_shape = self
            .in_shape
            .take()
            .expect("upsample backward without forward");
        let [c, d1, d2, d3] = in_shape;
        let [o1, o2, o3] = self.target;
        let bsz = self.in_batch;
        let mut grad_in = if bsz == 0 {
            assert_eq!(grad_out.shape(), &[c, o1, o2, o3]);
            ws.alloc(&in_shape)
        } else {
            assert_eq!(grad_out.shape(), &[c, bsz, o1, o2, o3]);
            ws.alloc(&[c, bsz, d1, d2, d3])
        };
        let c_eff = c * bsz.max(1);
        up_back_core(
            grad_out.data(),
            c_eff,
            [d1, d2, d3],
            self.target,
            grad_in.data_mut(),
        );
        ws.free(grad_out);
        ws.prof_end(t, ProfKind::UpBwd);
        grad_in
    }

    fn forward_batch_in(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let s = x.shape();
        assert_eq!(s.len(), 5, "upsample batch expects [c, b, d1, d2, d3]");
        let (c, bsz, d1, d2, d3) = (s[0], s[1], s[2], s[3], s[4]);
        let [o1, o2, o3] = self.target;
        let mut out = ws.alloc(&[c, bsz, o1, o2, o3]);
        up_core(x.data(), c * bsz, [d1, d2, d3], self.target, out.data_mut());
        self.in_shape = Some([c, d1, d2, d3]);
        self.in_batch = bsz;
        ws.prof_end(t, ProfKind::UpFwd);
        out
    }

    fn backward_batch_in(&mut self, grad_out: Tensor, ws: &mut NnWorkspace) -> Tensor {
        self.backward_in(grad_out, ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubling_replicates_each_cell() {
        let x = Tensor::from_vec(&[1, 2, 1, 1], vec![1.0, 2.0]).unwrap();
        let mut u = Upsample3d::to_shape([4, 1, 1]);
        let y = u.forward(&x);
        assert_eq!(y.data(), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn restores_odd_shapes_after_ceil_pooling() {
        // 5 pooled (ceil) -> 3; upsample back to 5.
        let x = Tensor::from_vec(&[1, 3, 1, 1], vec![10.0, 20.0, 30.0]).unwrap();
        let mut u = Upsample3d::to_shape([5, 1, 1]);
        let y = u.forward(&x);
        assert_eq!(y.shape(), &[1, 5, 1, 1]);
        // floor(i * 3 / 5): 0,0,1,1,2
        assert_eq!(y.data(), &[10.0, 10.0, 20.0, 20.0, 30.0]);
    }

    #[test]
    fn backward_accumulates_replicated_gradients() {
        let x = Tensor::from_vec(&[1, 2, 1, 1], vec![0.0, 0.0]).unwrap();
        let mut u = Upsample3d::to_shape([4, 1, 1]);
        u.forward(&x);
        let g = u.backward(&Tensor::from_vec(&[1, 4, 1, 1], vec![1.0, 2.0, 3.0, 4.0]).unwrap());
        assert_eq!(g.data(), &[3.0, 7.0]);
    }

    #[test]
    fn identity_when_shapes_match() {
        let x = Tensor::from_fn4(&[2, 2, 3, 1], |c, a, b, _| (c * 10 + a + b) as f32);
        let mut u = Upsample3d::to_shape([2, 3, 1]);
        assert_eq!(u.forward(&x), x);
    }
}
