//! Weight (de)serialization in a small self-describing binary format.
//!
//! The format is deliberately dependency-free: a magic string, a version, a
//! tensor count, and per tensor its rank, shape (u64 little-endian) and f32
//! little-endian data. Parameters are visited in the deterministic order
//! reported by [`Layer::params_mut`], so weights round-trip for any layer in
//! this crate.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::NnError;
use crate::layer::Layer;

const MAGIC: &[u8; 8] = b"OARSMTNN";
const VERSION: u32 = 1;

/// Writes a layer's parameters to `writer`.
///
/// # Errors
///
/// Returns [`NnError::Io`] on write failure.
pub fn save_params<L: Layer + ?Sized, W: Write>(
    layer: &mut L,
    mut writer: W,
) -> Result<(), NnError> {
    let params = layer.params_mut();
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(params.len() as u64).to_le_bytes())?;
    for p in params {
        let shape = p.value.shape();
        writer.write_all(&(shape.len() as u64).to_le_bytes())?;
        for &d in shape {
            writer.write_all(&(d as u64).to_le_bytes())?;
        }
        for &v in p.value.data() {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads parameters from `reader` into a layer with the *same architecture*
/// as the one that was saved.
///
/// # Errors
///
/// * [`NnError::Io`] on read failure,
/// * [`NnError::BadModelFile`] on a wrong magic/version,
/// * [`NnError::ShapeMismatch`] if the stored tensors do not match the
///   layer's parameters.
pub fn load_params<L: Layer + ?Sized, R: Read>(
    layer: &mut L,
    mut reader: R,
) -> Result<(), NnError> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(NnError::BadModelFile("wrong magic".into()));
    }
    let version = read_u32(&mut reader)?;
    if version != VERSION {
        return Err(NnError::BadModelFile(format!(
            "unsupported version {version}"
        )));
    }
    let count = read_u64(&mut reader)? as usize;
    let mut params = layer.params_mut();
    if count != params.len() {
        return Err(NnError::BadModelFile(format!(
            "model stores {count} tensors but the layer has {}",
            params.len()
        )));
    }
    // Never trust sizes from the file: a corrupted header must produce an
    // error, not a huge allocation.
    const MAX_RANK: usize = 8;
    for p in params.iter_mut() {
        let rank = read_u64(&mut reader)? as usize;
        if rank > MAX_RANK {
            return Err(NnError::BadModelFile(format!("implausible rank {rank}")));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            let d = read_u64(&mut reader)? as usize;
            if d == 0 || d > (1 << 32) {
                return Err(NnError::BadModelFile(format!("implausible dimension {d}")));
            }
            shape.push(d);
        }
        if shape != p.value.shape() {
            return Err(NnError::ShapeMismatch {
                expected: p.value.shape().to_vec(),
                found: shape,
            });
        }
        for v in p.value.data_mut() {
            let mut buf = [0u8; 4];
            reader.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
    }
    Ok(())
}

/// Saves a layer's parameters to a file; see [`save_params`].
///
/// # Errors
///
/// Returns [`NnError::Io`] if the file cannot be created or written.
pub fn save_to_file<L: Layer + ?Sized, P: AsRef<Path>>(
    layer: &mut L,
    path: P,
) -> Result<(), NnError> {
    let file = File::create(path)?;
    save_params(layer, BufWriter::new(file))
}

/// Loads a layer's parameters from a file; see [`load_params`].
///
/// # Errors
///
/// See [`load_params`]; additionally [`NnError::Io`] if the file cannot be
/// opened.
pub fn load_from_file<L: Layer + ?Sized, P: AsRef<Path>>(
    layer: &mut L,
    path: P,
) -> Result<(), NnError> {
    let file = File::open(path)?;
    load_params(layer, BufReader::new(file))
}

fn read_u32<R: Read>(reader: &mut R) -> Result<u32, NnError> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(reader: &mut R) -> Result<u64, NnError> {
    let mut buf = [0u8; 8];
    reader.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Initializer;
    use crate::tensor::Tensor;
    use crate::unet::{UNet3d, UNetConfig};

    fn cfg(seed: u64) -> UNetConfig {
        UNetConfig {
            in_channels: 2,
            base_channels: 2,
            levels: 1,
            seed,
        }
    }

    #[test]
    fn weights_round_trip_through_bytes() {
        let mut src = UNet3d::new(cfg(7));
        let mut bytes = Vec::new();
        save_params(&mut src, &mut bytes).unwrap();

        let mut dst = UNet3d::new(cfg(99)); // different init
        load_params(&mut dst, bytes.as_slice()).unwrap();

        let x = Initializer::new(1).uniform(&[2, 3, 3, 2], 1.0);
        let ys = src.predict(&x);
        let yd = dst.predict(&x);
        assert_eq!(ys, yd, "loaded network must reproduce saved outputs");
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut net = UNet3d::new(cfg(0));
        let bytes = b"NOTMODEL........".to_vec();
        assert!(matches!(
            load_params(&mut net, bytes.as_slice()),
            Err(NnError::BadModelFile(_))
        ));
    }

    #[test]
    fn truncated_file_is_an_io_error() {
        let mut src = UNet3d::new(cfg(7));
        let mut bytes = Vec::new();
        save_params(&mut src, &mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        let mut dst = UNet3d::new(cfg(7));
        assert!(matches!(
            load_params(&mut dst, bytes.as_slice()),
            Err(NnError::Io(_))
        ));
    }

    #[test]
    fn architecture_mismatch_is_detected() {
        let mut src = UNet3d::new(cfg(7));
        let mut bytes = Vec::new();
        save_params(&mut src, &mut bytes).unwrap();
        let mut wider = UNet3d::new(UNetConfig {
            base_channels: 3,
            ..cfg(7)
        });
        let err = load_params(&mut wider, bytes.as_slice()).unwrap_err();
        assert!(matches!(
            err,
            NnError::ShapeMismatch { .. } | NnError::BadModelFile(_)
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("oarsmt_nn_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.bin");
        let mut src = UNet3d::new(cfg(3));
        save_to_file(&mut src, &path).unwrap();
        let mut dst = UNet3d::new(cfg(4));
        load_from_file(&mut dst, &path).unwrap();
        let x = Tensor::zeros(&[2, 2, 2, 1]);
        assert_eq!(src.predict(&x), dst.predict(&x));
        std::fs::remove_file(&path).ok();
    }
}
