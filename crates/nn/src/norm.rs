//! Group normalization (Wu & He) with full backpropagation.
//!
//! Batch normalization is useless at batch size 1 (this substrate trains
//! sample-by-sample with gradient accumulation), so the normalization
//! option for the U-Net is GroupNorm: channels are split into groups and
//! each group is normalized over its channels and all spatial positions,
//! with learned per-channel scale and shift.

use crate::layer::{Layer, Param};
use crate::tensor::Tensor;
use crate::workspace::{NnWorkspace, ProfKind};

/// Group normalization over `[C, D1, D2, D3]` tensors.
#[derive(Debug, Clone)]
pub struct GroupNorm {
    channels: usize,
    groups: usize,
    eps: f32,
    gamma: Param,
    beta: Param,
    cache: Option<NormCache>,
    /// Retired `inv_std` storage, recycled across forward/backward cycles.
    spare_inv: Vec<f32>,
}

#[derive(Debug, Clone)]
struct NormCache {
    /// Normalized activations `x_hat`.
    x_hat: Tensor,
    /// Per-group `1 / sqrt(var + eps)`.
    inv_std: Vec<f32>,
}

impl GroupNorm {
    /// Creates a GroupNorm layer with `groups` groups over `channels`
    /// channels; `gamma` starts at 1, `beta` at 0.
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not divide `channels` or either is zero.
    pub fn new(channels: usize, groups: usize) -> Self {
        assert!(
            groups > 0 && channels > 0 && channels.is_multiple_of(groups),
            "groups ({groups}) must divide channels ({channels})"
        );
        let mut gamma = Tensor::zeros(&[channels]);
        gamma.fill(1.0);
        GroupNorm {
            channels,
            groups,
            eps: 1e-5,
            gamma: Param::new(gamma),
            beta: Param::new(Tensor::zeros(&[channels])),
            cache: None,
            spare_inv: Vec::new(),
        }
    }

    /// Number of channel groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Cache-free `&self` forward for the shared-selector inference path
    /// (rank-4 single-sample only). Bit-identical to
    /// [`Layer::forward_in`]: the normalize and scale-shift steps apply
    /// the same operation sequence per element, just without storing
    /// `x_hat`.
    pub fn infer_in(&self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let s = x.shape();
        assert_eq!(s.len(), 4, "groupnorm expects [c, d1, d2, d3]");
        assert_eq!(s[0], self.channels, "groupnorm channel mismatch");
        let spatial: usize = s[1..].iter().product();
        let per_group = self.channels / self.groups;
        let group_len = per_group * spatial;
        let mut y = ws.alloc(s);
        let data = x.data();
        let gamma = self.gamma.value.data();
        let beta = self.beta.value.data();
        for g in 0..self.groups {
            let start = g * group_len;
            let slice = &data[start..start + group_len];
            let mean: f32 = slice.iter().sum::<f32>() / group_len as f32;
            let var: f32 =
                slice.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / group_len as f32;
            let is = 1.0 / (var + self.eps).sqrt();
            let dst = &mut y.data_mut()[start..start + group_len];
            for (i, (o, &v)) in dst.iter_mut().zip(slice).enumerate() {
                let c = g * per_group + i / spatial;
                *o = gamma[c] * ((v - mean) * is) + beta[c];
            }
        }
        ws.prof_end(t, ProfKind::NormFwd);
        y
    }
}

impl Layer for GroupNorm {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut ws = NnWorkspace::new();
        self.forward_in(x, &mut ws)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = NnWorkspace::new();
        let g = ws.alloc_copy(grad_out);
        self.backward_in(g, &mut ws)
    }

    fn forward_in(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let s = x.shape();
        assert_eq!(s.len(), 4, "groupnorm expects [c, d1, d2, d3]");
        assert_eq!(s[0], self.channels, "groupnorm channel mismatch");
        let spatial: usize = s[1..].iter().product();
        let per_group = self.channels / self.groups;
        let group_len = per_group * spatial;

        let mut x_hat = ws.alloc(s);
        let mut inv_std = std::mem::take(&mut self.spare_inv);
        inv_std.clear();
        inv_std.resize(self.groups, 0.0);
        let data = x.data();
        for (g, inv) in inv_std.iter_mut().enumerate() {
            let start = g * group_len;
            let slice = &data[start..start + group_len];
            let mean: f32 = slice.iter().sum::<f32>() / group_len as f32;
            let var: f32 =
                slice.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / group_len as f32;
            let is = 1.0 / (var + self.eps).sqrt();
            *inv = is;
            let dst = &mut x_hat.data_mut()[start..start + group_len];
            for (o, &v) in dst.iter_mut().zip(slice) {
                *o = (v - mean) * is;
            }
        }
        // y = gamma[c] * x_hat + beta[c].
        let mut y = ws.alloc(s);
        let gamma = self.gamma.value.data();
        let beta = self.beta.value.data();
        for c in 0..self.channels {
            let base = c * spatial;
            let src = &x_hat.data()[base..base + spatial];
            let dst = &mut y.data_mut()[base..base + spatial];
            for (o, &v) in dst.iter_mut().zip(src) {
                *o = gamma[c] * v + beta[c];
            }
        }
        if ws.training() {
            self.cache = Some(NormCache { x_hat, inv_std });
        } else {
            ws.free(x_hat);
            self.spare_inv = inv_std;
            self.cache = None;
        }
        ws.prof_end(t, ProfKind::NormFwd);
        y
    }

    fn backward_in(&mut self, grad_out: Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let cache = self
            .cache
            .take()
            .expect("groupnorm backward without forward");
        let s = grad_out.shape().to_vec();
        let spatial: usize = s[1..].iter().product();
        let per_group = self.channels / self.groups;
        let group_len = per_group * spatial;

        // Parameter gradients.
        let g_out = grad_out.data();
        let x_hat = cache.x_hat.data();
        for c in 0..self.channels {
            let base = c * spatial;
            let mut dg = 0.0f32;
            let mut db = 0.0f32;
            for i in 0..spatial {
                dg += g_out[base + i] * x_hat[base + i];
                db += g_out[base + i];
            }
            self.gamma.grad.data_mut()[c] += dg;
            self.beta.grad.data_mut()[c] += db;
        }

        // Input gradient: for each group,
        // dx = (inv_std / N) * (N * dxhat - sum(dxhat) - x_hat * sum(dxhat * x_hat))
        // where dxhat = g_out * gamma[c].
        let gamma = self.gamma.value.data();
        let mut grad_in = ws.alloc(&s);
        let mut dxhat = std::mem::take(&mut ws.dxhat);
        dxhat.clear();
        dxhat.resize(group_len, 0.0);
        for g in 0..self.groups {
            let start = g * group_len;
            let mut sum_dxhat = 0.0f32;
            let mut sum_dxhat_xhat = 0.0f32;
            for i in 0..group_len {
                let c = (start + i) / spatial;
                let d = g_out[start + i] * gamma[c];
                dxhat[i] = d;
                sum_dxhat += d;
                sum_dxhat_xhat += d * x_hat[start + i];
            }
            let n = group_len as f32;
            let is = cache.inv_std[g];
            for i in 0..group_len {
                grad_in.data_mut()[start + i] =
                    (is / n) * (n * dxhat[i] - sum_dxhat - x_hat[start + i] * sum_dxhat_xhat);
            }
        }
        ws.dxhat = dxhat;
        ws.free(cache.x_hat);
        self.spare_inv = cache.inv_std;
        ws.free(grad_out);
        ws.prof_end(t, ProfKind::NormBwd);
        grad_in
    }

    fn forward_batch_in(&mut self, x: &Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let s = x.shape();
        assert_eq!(s.len(), 5, "groupnorm batch expects [c, b, d1, d2, d3]");
        assert_eq!(s[0], self.channels, "groupnorm channel mismatch");
        let bsz = s[1];
        let spatial: usize = s[2..].iter().product();
        let per_group = self.channels / self.groups;
        let group_len = per_group * spatial;

        // Per-(sample, group) statistics. The batched layout strides a
        // sample's group across channels, so iterate channels ascending
        // then positions ascending — the exact element order of the
        // contiguous single-sample slice, keeping each single-accumulator
        // sum bitwise identical to the sequential pass.
        let mut x_hat = ws.alloc(s);
        let mut inv_std = std::mem::take(&mut self.spare_inv);
        inv_std.clear();
        inv_std.resize(bsz * self.groups, 0.0);
        let data = x.data();
        for b in 0..bsz {
            for g in 0..self.groups {
                let mut sum = 0.0f32;
                for cl in 0..per_group {
                    let base = ((g * per_group + cl) * bsz + b) * spatial;
                    for &v in &data[base..base + spatial] {
                        sum += v;
                    }
                }
                let mean = sum / group_len as f32;
                let mut var_sum = 0.0f32;
                for cl in 0..per_group {
                    let base = ((g * per_group + cl) * bsz + b) * spatial;
                    for &v in &data[base..base + spatial] {
                        var_sum += (v - mean) * (v - mean);
                    }
                }
                let is = 1.0 / (var_sum / group_len as f32 + self.eps).sqrt();
                inv_std[b * self.groups + g] = is;
                for cl in 0..per_group {
                    let base = ((g * per_group + cl) * bsz + b) * spatial;
                    let dst = &mut x_hat.data_mut()[base..base + spatial];
                    for (o, &v) in dst.iter_mut().zip(&data[base..base + spatial]) {
                        *o = (v - mean) * is;
                    }
                }
            }
        }
        // y = gamma[c] * x_hat + beta[c]: per-channel blocks stay
        // contiguous (all samples back to back) in the batched layout.
        let mut y = ws.alloc(s);
        let gamma = self.gamma.value.data();
        let beta = self.beta.value.data();
        let cblk = bsz * spatial;
        for c in 0..self.channels {
            let base = c * cblk;
            let src = &x_hat.data()[base..base + cblk];
            let dst = &mut y.data_mut()[base..base + cblk];
            for (o, &v) in dst.iter_mut().zip(src) {
                *o = gamma[c] * v + beta[c];
            }
        }
        if ws.training() {
            self.cache = Some(NormCache { x_hat, inv_std });
        } else {
            ws.free(x_hat);
            self.spare_inv = inv_std;
            self.cache = None;
        }
        ws.prof_end(t, ProfKind::NormFwd);
        y
    }

    fn backward_batch_in(&mut self, grad_out: Tensor, ws: &mut NnWorkspace) -> Tensor {
        let t = ws.prof_start();
        let cache = self
            .cache
            .take()
            .expect("groupnorm backward without forward");
        let s = grad_out.shape();
        assert_eq!(s.len(), 5, "groupnorm batch backward expects rank 5");
        let bsz = s[1];
        let spatial: usize = s[2..].iter().product();
        let per_group = self.channels / self.groups;
        let group_len = per_group * spatial;

        // Parameter gradients: per element `grad[c]`, one fresh per-sample
        // sum added samples-ascending — the sequential accumulation order.
        let g_out = grad_out.data();
        let x_hat = cache.x_hat.data();
        for c in 0..self.channels {
            for b in 0..bsz {
                let base = (c * bsz + b) * spatial;
                let mut dg = 0.0f32;
                let mut db = 0.0f32;
                for i in 0..spatial {
                    dg += g_out[base + i] * x_hat[base + i];
                    db += g_out[base + i];
                }
                self.gamma.grad.data_mut()[c] += dg;
                self.beta.grad.data_mut()[c] += db;
            }
        }

        // Input gradient per (sample, group), channels-ascending element
        // order as in the forward pass.
        let gamma = self.gamma.value.data();
        let mut grad_in = ws.alloc(&[self.channels, bsz, s[2], s[3], s[4]]);
        let mut dxhat = std::mem::take(&mut ws.dxhat);
        dxhat.clear();
        dxhat.resize(group_len, 0.0);
        for b in 0..bsz {
            for g in 0..self.groups {
                let mut sum_dxhat = 0.0f32;
                let mut sum_dxhat_xhat = 0.0f32;
                for cl in 0..per_group {
                    let c = g * per_group + cl;
                    let base = (c * bsz + b) * spatial;
                    for i in 0..spatial {
                        let d = g_out[base + i] * gamma[c];
                        dxhat[cl * spatial + i] = d;
                        sum_dxhat += d;
                        sum_dxhat_xhat += d * x_hat[base + i];
                    }
                }
                let n = group_len as f32;
                let is = cache.inv_std[b * self.groups + g];
                for cl in 0..per_group {
                    let base = ((g * per_group + cl) * bsz + b) * spatial;
                    for i in 0..spatial {
                        grad_in.data_mut()[base + i] = (is / n)
                            * (n * dxhat[cl * spatial + i]
                                - sum_dxhat
                                - x_hat[base + i] * sum_dxhat_xhat);
                    }
                }
            }
        }
        ws.dxhat = dxhat;
        ws.free(cache.x_hat);
        self.spare_inv = cache.inv_std;
        ws.free(grad_out);
        ws.prof_end(t, ProfKind::NormBwd);
        grad_in
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use crate::init::Initializer;

    #[test]
    fn output_is_normalized_per_group() {
        let mut gn = GroupNorm::new(4, 2);
        let x = Initializer::new(1).uniform(&[4, 3, 2, 1], 5.0);
        let y = gn.forward(&x);
        // Each group of 2 channels x 6 positions has ~zero mean, ~unit var.
        let spatial = 6;
        for g in 0..2 {
            let slice = &y.data()[g * 2 * spatial..(g + 1) * 2 * spatial];
            let mean: f32 = slice.iter().sum::<f32>() / slice.len() as f32;
            let var: f32 =
                slice.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / slice.len() as f32;
            assert!(mean.abs() < 1e-4, "group {g} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "group {g} var {var}");
        }
    }

    #[test]
    fn scale_and_shift_apply_per_channel() {
        let mut gn = GroupNorm::new(2, 1);
        gn.gamma.value.data_mut()[0] = 2.0;
        gn.gamma.value.data_mut()[1] = 0.5;
        gn.beta.value.data_mut()[1] = 3.0;
        let x = Initializer::new(2).uniform(&[2, 2, 2, 1], 1.0);
        let y = gn.forward(&x);
        // Channel 1 (spatial size 4) values cluster around beta = 3.
        let c1: f32 = y.data()[4..8].iter().sum::<f32>() / 4.0;
        assert!((c1 - 3.0).abs() < 1.0, "channel-1 mean {c1}");
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut gn = GroupNorm::new(4, 2);
        // Non-trivial gamma/beta so their gradients are exercised.
        for (i, v) in gn.gamma.value.data_mut().iter_mut().enumerate() {
            *v = 0.5 + 0.3 * i as f32;
        }
        let x = Initializer::new(3).uniform(&[4, 2, 2, 1], 1.0);
        check_layer_gradients(&mut gn, &x, 1e-2, 3e-2);
    }

    #[test]
    fn single_group_is_layer_norm() {
        let mut gn = GroupNorm::new(3, 1);
        let x = Initializer::new(4).uniform(&[3, 2, 1, 1], 2.0);
        let y = gn.forward(&x);
        let mean: f32 = y.data().iter().sum::<f32>() / y.len() as f32;
        assert!(mean.abs() < 1e-4);
    }

    #[test]
    fn workspace_path_matches_legacy_bitwise() {
        let mut a = GroupNorm::new(4, 2);
        let mut b = a.clone();
        let x = Initializer::new(9).uniform(&[4, 3, 2, 2], 2.0);
        let g = Initializer::new(10).uniform(&[4, 3, 2, 2], 1.0);
        let y_legacy = a.forward(&x);
        let gi_legacy = a.backward(&g);
        let mut ws = NnWorkspace::new();
        for _ in 0..2 {
            b.zero_grad();
            let y = b.forward_in(&x, &mut ws);
            let gi = b.backward_in(ws.alloc_copy(&g), &mut ws);
            assert_eq!(y, y_legacy);
            for (p, q) in y.data().iter().zip(y_legacy.data()) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
            for (p, q) in gi.data().iter().zip(gi_legacy.data()) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
            ws.free(y);
            ws.free(gi);
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn invalid_group_count_panics() {
        GroupNorm::new(5, 2);
    }
}
