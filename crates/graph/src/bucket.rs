//! Integer-keyed bucket priority queue (Dial's algorithm substrate).
//!
//! The paper's cost model bounds every Hanan-grid edge cost to a small
//! positive integer (PAPER.md §2.2: per-gap costs in `1..=1000`, via costs
//! in `3..=5`), which makes Dial's bucket queue a drop-in replacement for
//! the binary heap inside the maze router: pushes and pops become `O(1)`
//! array operations plus a monotone cursor scan, instead of `O(log n)`
//! sift operations over a heap that holds millions of entries on the large
//! Table 1 rungs.
//!
//! Keys must be monotone: once an entry with key `k` has been popped, every
//! later push must use a key `≥ k` (true for Dijkstra with non-negative
//! edge costs). Entries alive at any instant span at most `span`
//! consecutive keys (for Dijkstra, `span` = the largest edge cost), so the
//! queue keeps `span + 1` buckets addressed circularly by
//! `key % nbuckets`.
//!
//! Pop order is part of the repo's determinism contract (DESIGN.md §12):
//! within one key, the entries present when the cursor reaches that key
//! drain in ascending vertex index (the bucket is sorted once, when
//! opened), and entries that arrive while their key is open drain
//! afterwards in arrival order. Dijkstra with edge costs `≥ 1` never
//! appends to the open bucket, so its pop order is exactly the binary
//! heap's `(cost, vertex index)` order — bit-identical results. The
//! open-bucket append behaviour is still defined (and tested) so the queue
//! stays correct for cost models with zero-cost edges.
//!
//! ```
//! use oarsmt_graph::bucket::BucketQueue;
//!
//! let mut q = BucketQueue::new();
//! q.reset(3); // largest key step between a pop and a push is 3
//! q.push(2, 7);
//! q.push(0, 9);
//! q.push(2, 4);
//! let mut scans = 0u64;
//! assert_eq!(q.pop_min(&mut scans), Some((0, 9)));
//! // Key 2 drains in ascending vertex index.
//! assert_eq!(q.pop_min(&mut scans), Some((2, 4)));
//! q.push(2, 6); // arrived while key 2 was open: drains after the batch
//! assert_eq!(q.pop_min(&mut scans), Some((2, 7)));
//! assert_eq!(q.pop_min(&mut scans), Some((2, 6)));
//! assert_eq!(q.pop_min(&mut scans), None);
//! ```

/// A reusable circular bucket queue over `u64` keys and `u32` payloads.
///
/// Created empty; [`BucketQueue::reset`] sizes it for a query and
/// invalidates previous contents by bumping an epoch (no `O(buckets)`
/// clear). All storage is retained across queries, so a warm queue
/// performs no allocation (the dynamic twin of the `oarsmt-lint`
/// `[[zero_alloc]]` registration).
#[derive(Debug, Clone, Default)]
pub struct BucketQueue {
    /// Bucket payloads; only `buckets[b][pos[b]..]` is live.
    buckets: Vec<Vec<u32>>,
    /// Epoch stamp per bucket: contents are valid only when equal to
    /// `epoch` (stale buckets are treated as empty and cleared on reuse).
    bucket_epoch: Vec<u32>,
    /// Drain position per bucket (entries before it are already popped).
    pos: Vec<u32>,
    epoch: u32,
    /// Absolute key the cursor is currently draining.
    cursor: u64,
    /// The key most recently sorted-on-open (cursor keys are monotone, so
    /// one scalar suffices).
    opened: u64,
    /// Live (un-popped) entries.
    len: usize,
    /// Whether a pop has happened: before the first pop any key may be
    /// seeded (the cursor tracks the minimum); after it the monotone
    /// contract binds.
    draining: bool,
    /// Largest key seeded before draining began (debug-only span check).
    seed_max: u64,
}

/// Sentinel for "no key opened yet".
const NO_KEY: u64 = u64::MAX;

impl BucketQueue {
    /// Creates an empty queue; [`BucketQueue::reset`] sizes it on first use.
    #[must_use]
    pub fn new() -> Self {
        BucketQueue::default()
    }

    /// Prepares the queue for a fresh query whose alive entries never span
    /// more than `span` consecutive keys (for Dijkstra: the largest edge
    /// cost; for A* with a consistent heuristic: twice that). Previous
    /// contents are invalidated in `O(1)` via the epoch stamp; bucket
    /// storage is retained.
    pub fn reset(&mut self, span: usize) {
        let need = span + 1;
        if self.buckets.len() < need {
            // lint: alloc-ok(grow-once: the ring only lengthens the first time a larger span appears; the new slots are capacity-0 vecs and warm resets take the epoch path)
            self.buckets.resize_with(need, Vec::new);
            self.bucket_epoch.resize(need, 0);
            self.pos.resize(need, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: reset all stamps once.
            self.bucket_epoch.fill(0);
            self.epoch = 1;
        }
        self.cursor = NO_KEY;
        self.opened = NO_KEY;
        self.len = 0;
        self.draining = false;
        self.seed_max = 0;
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue holds no live entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes `idx` with the given key.
    ///
    /// Keys must be monotone with respect to pops: once
    /// [`BucketQueue::pop_min`] has returned an entry, `key` must be `≥`
    /// its key (checked in debug builds) and within `span` of it so the
    /// circular addressing cannot collide. Before the first pop any keys
    /// may be seeded, as long as they span at most `span` between
    /// themselves.
    pub fn push(&mut self, key: u64, idx: u32) {
        if self.draining {
            debug_assert!(
                key >= self.cursor,
                "non-monotone bucket push: key {key} < cursor {}",
                self.cursor
            );
            debug_assert!(
                key - self.cursor < self.buckets.len() as u64,
                "bucket span exceeded: key {key}, cursor {}, buckets {}",
                self.cursor,
                self.buckets.len()
            );
        } else {
            // Seeding phase: the cursor starts at the smallest pushed key.
            self.cursor = self.cursor.min(key);
            #[cfg(debug_assertions)]
            {
                self.seed_max = self.seed_max.max(key);
                debug_assert!(
                    self.seed_max - self.cursor < self.buckets.len() as u64,
                    "seed span exceeded: keys {}..={}, buckets {}",
                    self.cursor,
                    self.seed_max,
                    self.buckets.len()
                );
            }
        }
        let b = (key % self.buckets.len() as u64) as usize;
        if self.bucket_epoch[b] != self.epoch {
            self.buckets[b].clear();
            self.pos[b] = 0;
            self.bucket_epoch[b] = self.epoch;
        }
        self.buckets[b].push(idx);
        self.len += 1;
    }

    /// Pops the minimum-key entry, advancing the cursor over empty buckets
    /// (each advance adds one to `scans` — the `dijkstra_bucket_scans`
    /// telemetry counter). Returns `None` when the queue is empty.
    pub fn pop_min(&mut self, scans: &mut u64) -> Option<(u64, u32)> {
        if self.len == 0 {
            return None;
        }
        self.draining = true;
        let nb = self.buckets.len() as u64;
        loop {
            let b = (self.cursor % nb) as usize;
            if self.bucket_epoch[b] == self.epoch {
                let live = self.pos[b] as usize;
                let bucket = &mut self.buckets[b];
                if live < bucket.len() {
                    if self.opened != self.cursor {
                        // First visit at this key: the entries present
                        // drain in ascending vertex index. Entries whose
                        // key was already drained on a previous cursor lap
                        // sit before `pos` and are untouched.
                        bucket[live..].sort_unstable();
                        self.opened = self.cursor;
                    }
                    let idx = bucket[live];
                    self.pos[b] += 1;
                    self.len -= 1;
                    return Some((self.cursor, idx));
                }
                // Fully drained on a previous lap or this one: reset the
                // bucket so the next lap starts clean.
                bucket.clear();
                self.pos[b] = 0;
            }
            self.cursor += 1;
            *scans += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_then_index_order() {
        let mut q = BucketQueue::new();
        q.reset(5);
        for &(k, i) in &[(3u64, 9u32), (1, 4), (3, 2), (1, 11), (5, 0)] {
            q.push(k, i);
        }
        let mut scans = 0;
        let mut out = Vec::new();
        while let Some(e) = q.pop_min(&mut scans) {
            out.push(e);
        }
        assert_eq!(out, vec![(1, 4), (1, 11), (3, 2), (3, 9), (5, 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn open_bucket_appends_drain_in_arrival_order() {
        let mut q = BucketQueue::new();
        q.reset(2);
        q.push(4, 8);
        q.push(4, 3);
        let mut scans = 0;
        assert_eq!(q.pop_min(&mut scans), Some((4, 3)));
        // Key 4 is open: a same-key arrival goes behind the sorted batch.
        q.push(4, 1);
        q.push(4, 2);
        assert_eq!(q.pop_min(&mut scans), Some((4, 8)));
        assert_eq!(q.pop_min(&mut scans), Some((4, 1)));
        assert_eq!(q.pop_min(&mut scans), Some((4, 2)));
        assert_eq!(q.pop_min(&mut scans), None);
    }

    #[test]
    fn circular_reuse_across_many_keys() {
        // Far more distinct keys than buckets: the modulus wraps and the
        // queue must keep draining correctly.
        let mut q = BucketQueue::new();
        q.reset(3);
        q.push(0, 0);
        let mut scans = 0;
        let mut expected_key = 0u64;
        while let Some((k, i)) = q.pop_min(&mut scans) {
            assert_eq!(k, expected_key);
            assert_eq!(i, (k % 100) as u32);
            if k < 50 {
                // Simulate a relaxation with edge costs 2 and 3.
                q.push(k + 2, ((k + 2) % 100) as u32);
                expected_key = k + 2;
                if q.len() == 1 {
                    continue;
                }
            }
            if q.is_empty() {
                break;
            }
        }
    }

    #[test]
    fn reset_invalidates_without_clearing_storage() {
        let mut q = BucketQueue::new();
        q.reset(4);
        q.push(1, 10);
        q.push(2, 20);
        let mut scans = 0;
        assert_eq!(q.pop_min(&mut scans), Some((1, 10)));
        // Abandon mid-drain; the next query must not see leftovers.
        q.reset(4);
        assert!(q.is_empty());
        assert_eq!(q.pop_min(&mut scans), None);
        q.push(7, 1);
        assert_eq!(q.pop_min(&mut scans), Some((7, 1)));
    }

    #[test]
    fn scan_counter_counts_cursor_advances() {
        let mut q = BucketQueue::new();
        q.reset(10);
        q.push(0, 1);
        q.push(8, 2);
        let mut scans = 0;
        q.pop_min(&mut scans);
        assert_eq!(scans, 0);
        q.pop_min(&mut scans);
        assert_eq!(scans, 8, "eight empty keys between 0 and 8");
    }

    #[test]
    fn randomized_against_sorted_reference() {
        // Deterministic pseudo-random workload compared against a sorted
        // reference: keys ascend in waves like a Dijkstra frontier.
        let mut q = BucketQueue::new();
        let span = 16usize;
        q.reset(span);
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        q.push(0, (next() % 1000) as u32);
        let mut popped = Vec::new();
        let mut scans = 0;
        let mut budget = 500;
        while let Some((k, i)) = q.pop_min(&mut scans) {
            popped.push((k, i));
            if budget > 0 {
                budget -= 1;
                let fan = next() % 3;
                for _ in 0..fan {
                    q.push(k + 1 + next() % span as u64, (next() % 1000) as u32);
                }
            }
        }
        // Keys must be non-decreasing.
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "keys out of order: {w:?}");
        }
    }
}
