//! Grid paths produced by maze routing.

use std::fmt;

use oarsmt_geom::GridPoint;
use serde::{Deserialize, Serialize};

/// An obstacle-avoiding path between two grid vertices: the visited points
/// in order, plus the total routing cost of the traversed edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridPath {
    /// Visited grid points, source first, target last. Consecutive points
    /// are grid neighbors.
    pub points: Vec<GridPoint>,
    /// Sum of the traversed edge costs (including via costs).
    pub cost: f64,
}

impl GridPath {
    /// A zero-cost path consisting of a single point (source == target).
    pub fn trivial(p: GridPoint) -> Self {
        GridPath {
            points: vec![p],
            cost: 0.0,
        }
    }

    /// The source endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the path is empty (never produced by this crate's
    /// searches).
    pub fn source(&self) -> GridPoint {
        *self.points.first().expect("path has at least one point")
    }

    /// The target endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the path is empty.
    pub fn target(&self) -> GridPoint {
        *self.points.last().expect("path has at least one point")
    }

    /// Number of edges in the path.
    pub fn edge_count(&self) -> usize {
        self.points.len().saturating_sub(1)
    }

    /// Iterator over the path's edges as point pairs.
    pub fn edges(&self) -> impl Iterator<Item = (GridPoint, GridPoint)> + '_ {
        self.points.windows(2).map(|w| (w[0], w[1]))
    }
}

impl fmt::Display for GridPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "path {} -> {} ({} edges, cost {})",
            self.source(),
            self.target(),
            self.edge_count(),
            self.cost
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_path_has_no_edges() {
        let p = GridPath::trivial(GridPoint::new(1, 2, 0));
        assert_eq!(p.edge_count(), 0);
        assert_eq!(p.source(), p.target());
        assert_eq!(p.cost, 0.0);
        assert_eq!(p.edges().count(), 0);
    }

    #[test]
    fn edges_pair_consecutive_points() {
        let p = GridPath {
            points: vec![
                GridPoint::new(0, 0, 0),
                GridPoint::new(1, 0, 0),
                GridPoint::new(1, 1, 0),
            ],
            cost: 2.0,
        };
        let edges: Vec<_> = p.edges().collect();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0], (GridPoint::new(0, 0, 0), GridPoint::new(1, 0, 0)));
        assert_eq!(edges[1], (GridPoint::new(1, 0, 0), GridPoint::new(1, 1, 0)));
    }
}
