//! Error types for graph searches.

use std::error::Error;
use std::fmt;

use oarsmt_geom::GridPoint;

/// Errors produced by graph searches over a Hanan grid.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// No obstacle-avoiding path exists between the requested endpoints.
    Unreachable {
        /// The search origin (one representative source).
        from: GridPoint,
        /// The unreachable target, if a single one was requested.
        to: Option<GridPoint>,
    },
    /// A search was started from a blocked (obstacle) vertex.
    BlockedSource(GridPoint),
    /// A search was given an empty source or target set.
    EmptyTerminalSet,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Unreachable { from, to: Some(to) } => {
                write!(f, "no obstacle-avoiding path from {from} to {to}")
            }
            GraphError::Unreachable { from, to: None } => {
                write!(f, "no obstacle-avoiding path from {from} to any target")
            }
            GraphError::BlockedSource(p) => {
                write!(f, "search source {p} is blocked by an obstacle")
            }
            GraphError::EmptyTerminalSet => write!(f, "empty terminal set"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::Unreachable {
            from: GridPoint::new(0, 0, 0),
            to: Some(GridPoint::new(1, 1, 0)),
        };
        assert!(e.to_string().contains("no obstacle-avoiding path"));
        assert!(GraphError::EmptyTerminalSet.to_string().contains("empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
