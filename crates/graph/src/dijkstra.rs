//! Single- and multi-source Dijkstra over Hanan grid graphs.
//!
//! Dijkstra over the grid is the "maze router" of the paper's OARMST
//! construction (Section 3.1): it finds the cheapest obstacle-avoiding
//! rectilinear path, counting via costs for layer changes.
//!
//! [`DijkstraWorkspace`] owns the per-vertex arrays and can be reused
//! across queries on same-sized graphs (the arrays are invalidated by an
//! epoch counter rather than cleared); the plain free functions are
//! one-shot conveniences and the `_in` variants thread a caller-owned
//! workspace through for allocation-free repeated queries.
//!
//! Every query runs under a [`QueuePolicy`]: the binary heap (the retained
//! oracle), Dial's bucket queue (bit-identical to the heap whenever the
//! cost model is bounded-integer — the paper's §2.2 model always is), or
//! A* on the heap ordered by `g + h` with a rectilinear-distance lower
//! bound (a *documented divergence*: same per-query path cost, possibly
//! different tie geometry). The search-order and tie-break contract all
//! three policies obey is specified in DESIGN.md §12.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_telemetry::{Counter, CounterSet};

use crate::bucket::BucketQueue;
use crate::error::GraphError;
use crate::path::GridPath;

/// Sentinel for "no predecessor".
const NO_PREV: u32 = u32::MAX;

/// Heap entry ordered by smallest cost first.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    cost: f64,
    idx: u32,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the cheapest first.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An optional rectangular search bound in grid indices (inclusive), used by
/// the bounded-exploration baseline router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBounds {
    /// Minimum horizontal index.
    pub h_lo: usize,
    /// Maximum horizontal index (inclusive).
    pub h_hi: usize,
    /// Minimum vertical index.
    pub v_lo: usize,
    /// Maximum vertical index (inclusive).
    pub v_hi: usize,
}

impl SearchBounds {
    /// The bounding box of a set of points, expanded by `margin` grid steps
    /// on each side and clipped to the graph.
    pub fn around<I: IntoIterator<Item = GridPoint>>(
        graph: &HananGraph,
        points: I,
        margin: usize,
    ) -> SearchBounds {
        let mut h_lo = usize::MAX;
        let mut h_hi = 0usize;
        let mut v_lo = usize::MAX;
        let mut v_hi = 0usize;
        for p in points {
            h_lo = h_lo.min(p.h);
            h_hi = h_hi.max(p.h);
            v_lo = v_lo.min(p.v);
            v_hi = v_hi.max(p.v);
        }
        if h_lo == usize::MAX {
            // Empty input: the whole grid.
            return SearchBounds {
                h_lo: 0,
                h_hi: graph.h() - 1,
                v_lo: 0,
                v_hi: graph.v() - 1,
            };
        }
        SearchBounds {
            h_lo: h_lo.saturating_sub(margin),
            h_hi: (h_hi + margin).min(graph.h() - 1),
            v_lo: v_lo.saturating_sub(margin),
            v_hi: (v_hi + margin).min(graph.v() - 1),
        }
    }

    /// Whether a point lies inside the bound (all layers are inside).
    #[inline]
    pub fn contains(&self, p: GridPoint) -> bool {
        self.h_lo <= p.h && p.h <= self.h_hi && self.v_lo <= p.v && p.v <= self.v_hi
    }
}

/// Largest integer edge cost for which the Dial bucket queue is used.
///
/// The paper's cost model caps gap costs at 1000 and via costs at 5; the
/// ceiling leaves generous slack while bounding the bucket array (a Dial
/// query keeps `ceiling + 1` buckets) and the per-query cursor scan.
pub const DIAL_MAX_EDGE_COST: u64 = 4096;

/// Which priority queue drives a maze query (DESIGN.md §12).
///
/// `Auto` is the default everywhere: it selects Dial's bucket queue when
/// the graph's cost model is bounded-integer
/// ([`HananGraph::integer_cost_ceiling`] `≤` [`DIAL_MAX_EDGE_COST`]) and
/// the binary heap otherwise. Dial pop order is engineered to be exactly
/// the heap's `(cost, vertex index)` order, so `Auto`, `Heap`, and `Dial`
/// are bit-identical — the heap stays available as the oracle the
/// equivalence property tests and benches compare against.
///
/// ```
/// use oarsmt_geom::{GridPoint, HananGraph};
/// use oarsmt_graph::dijkstra::{DijkstraWorkspace, QueuePolicy};
///
/// let g = HananGraph::uniform(6, 6, 1, 1.0, 1.0, 3.0);
/// let mut ws = DijkstraWorkspace::new();
/// let t = g.index(GridPoint::new(5, 4, 0));
/// let src = [GridPoint::new(0, 0, 0)];
/// let heap = ws
///     .shortest_path_to_set_policy(&g, &src, |i| i == t, None, QueuePolicy::Heap, &[])?;
/// let dial = ws
///     .shortest_path_to_set_policy(&g, &src, |i| i == t, None, QueuePolicy::Dial, &[])?;
/// assert_eq!(heap.cost.to_bits(), dial.cost.to_bits());
/// assert_eq!(heap.points, dial.points); // bit-identical, not just equal-cost
/// # Ok::<(), oarsmt_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QueuePolicy {
    /// Bounded-integer cost model ⇒ Dial bucket queue, else binary heap.
    /// Bit-identical to `Heap` either way. The default.
    #[default]
    Auto,
    /// The binary-heap Dijkstra — the retained oracle.
    Heap,
    /// Dial's bucket queue; falls back to `Heap` when the cost model is
    /// not bounded-integer. Bit-identical to `Heap` when it applies.
    Dial,
    /// A* on the binary heap ordered by `f = g + h`, with the
    /// rectilinear-distance lower bound of [`RectilinearBound`] as `h`.
    /// Needs a non-empty target hint covering every vertex `is_target`
    /// accepts, and a bounded-integer cost model (falls back like `Dial`
    /// otherwise). **Documented divergence** (DESIGN.md §12.4): each query
    /// returns a cheapest path with the same cost bits as the oracle, but
    /// possibly a different equal-cost geometry, so downstream trees may
    /// differ.
    AStar,
}

/// A [`QueuePolicy`] after eligibility resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResolvedQueue {
    Heap,
    /// Dial with the graph's integer cost ceiling.
    Dial(u64),
    AStar,
}

impl QueuePolicy {
    /// Resolves the policy against a graph's integer-cost ceiling and the
    /// presence of a target hint. Pure function of the query inputs, so
    /// the choice is deterministic.
    fn resolve(self, ceiling: Option<u64>, have_targets: bool) -> ResolvedQueue {
        let eligible = ceiling.filter(|&c| c <= DIAL_MAX_EDGE_COST);
        match (self, eligible) {
            (QueuePolicy::Heap, _) | (_, None) => ResolvedQueue::Heap,
            (QueuePolicy::AStar, Some(_)) if have_targets => ResolvedQueue::AStar,
            (_, Some(c)) => ResolvedQueue::Dial(c),
        }
    }
}

/// The A* rectilinear-distance lower bound (DESIGN.md §12.4).
///
/// For a target set `T`, the bound at vertex `p` is the cost-weighted
/// rectilinear distance from `p` to the bounding box of `T` in *prefix
/// space*: crossing column gap `i` costs exactly `x_costs[i]`, so the
/// horizontal cost of any path that nets a move from column `a` to column
/// `b` is at least `|px[b] − px[a]|` where `px` is the prefix sum of the
/// gap costs (same for rows, and `via_cost ×` layer distance for layers).
/// The bound is admissible and consistent, zero on every target, and `O(1)`
/// per evaluation after an `O(H + V + |T|)` per-query preparation.
#[derive(Debug, Clone, Default)]
pub struct RectilinearBound {
    /// Prefix sums of the horizontal gap costs (`px[i]` = cost of walking
    /// from column 0 to column `i`), length `H`.
    px: Vec<u64>,
    /// Prefix sums of the vertical gap costs, length `V`.
    py: Vec<u64>,
    x_lo: u64,
    x_hi: u64,
    y_lo: u64,
    y_hi: u64,
    m_lo: u64,
    m_hi: u64,
    via: u64,
}

impl RectilinearBound {
    /// Rebuilds the prefix sums and the target bounding box for a query.
    /// Requires a bounded-integer cost model (the caller resolves that via
    /// [`HananGraph::integer_cost_ceiling`]) and a non-empty target set.
    fn prepare(&mut self, graph: &HananGraph, targets: &[GridPoint]) {
        debug_assert!(!targets.is_empty());
        self.px.clear();
        self.px.push(0);
        let mut acc = 0u64;
        for &c in graph.x_costs() {
            acc += c as u64;
            self.px.push(acc);
        }
        self.py.clear();
        self.py.push(0);
        acc = 0;
        for &c in graph.y_costs() {
            acc += c as u64;
            self.py.push(acc);
        }
        self.via = graph.via_cost() as u64;
        self.x_lo = u64::MAX;
        self.x_hi = 0;
        self.y_lo = u64::MAX;
        self.y_hi = 0;
        self.m_lo = u64::MAX;
        self.m_hi = 0;
        for t in targets {
            self.x_lo = self.x_lo.min(self.px[t.h]);
            self.x_hi = self.x_hi.max(self.px[t.h]);
            self.y_lo = self.y_lo.min(self.py[t.v]);
            self.y_hi = self.y_hi.max(self.py[t.v]);
            self.m_lo = self.m_lo.min(t.m as u64);
            self.m_hi = self.m_hi.max(t.m as u64);
        }
    }

    /// The lower bound at `p`: prefix-space rectilinear distance to the
    /// target bounding box.
    #[inline]
    fn eval(&self, p: GridPoint) -> u64 {
        #[inline]
        fn axis(v: u64, lo: u64, hi: u64) -> u64 {
            if v < lo {
                lo - v
            } else {
                v.saturating_sub(hi)
            }
        }
        axis(self.px[p.h], self.x_lo, self.x_hi)
            + axis(self.py[p.v], self.y_lo, self.y_hi)
            + self.via * axis(p.m as u64, self.m_lo, self.m_hi)
    }
}

/// Reusable Dijkstra work arrays (distance, predecessor, visit stamps).
///
/// Reuse a single `DijkstraWorkspace` across the many maze-routing queries
/// of an OARMST construction to avoid repeated allocation. The workspace
/// automatically grows when given a larger graph, and old query state is
/// invalidated by bumping a generation counter (`epoch`) instead of an
/// `O(n)` clear.
#[derive(Debug, Clone, Default)]
pub struct DijkstraWorkspace {
    dist: Vec<f64>,
    prev: Vec<u32>,
    stamp: Vec<u32>,
    /// Settled stamp for the Dial and A* searches: a vertex is final once
    /// `done[i] == epoch` (the heap path uses the `cost > dist` skip
    /// instead — DESIGN.md §12.3 shows the two are equivalent).
    done: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Entry>,
    /// The Dial bucket queue ([`QueuePolicy::Dial`] and `Auto` on
    /// bounded-integer cost models).
    bucket: BucketQueue,
    /// The A* lower bound, rebuilt per `AStar` query.
    bound: RectilinearBound,
    /// Tier A telemetry: settled pops, relaxation attempts, queue pushes
    /// and Dial cursor scans ([`Counter::DijkstraPops`] and friends).
    /// Monotone across queries; owners read deltas (see
    /// `oarsmt-telemetry`).
    pub counters: CounterSet,
}

/// The pre-refactor name of [`DijkstraWorkspace`], kept as an alias so
/// existing call sites keep compiling.
pub type SearchSpace = DijkstraWorkspace;

impl DijkstraWorkspace {
    /// Creates an empty workspace; arrays grow on first use.
    pub fn new() -> Self {
        DijkstraWorkspace::default()
    }

    fn prepare(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.prev.resize(n, NO_PREV);
            self.stamp.resize(n, 0);
            self.done.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrapped: reset all stamps once.
            self.stamp.fill(0);
            self.done.fill(0);
            self.epoch = 1;
        }
        self.heap.clear();
    }

    #[inline]
    fn fresh(&self, idx: usize) -> bool {
        self.stamp[idx] != self.epoch
    }

    /// Multi-source, multi-target shortest path: from the cheapest of
    /// `sources` (each with an initial cost of zero) to the first settled
    /// vertex for which `is_target` returns `true`.
    ///
    /// `bounds`, when given, restricts expansion to a rectangular grid
    /// window (targets outside the window are unreachable).
    ///
    /// # Errors
    ///
    /// * [`GraphError::EmptyTerminalSet`] if `sources` is empty.
    /// * [`GraphError::BlockedSource`] if every source is blocked.
    /// * [`GraphError::Unreachable`] if no target can be reached.
    pub fn shortest_path_to_set<F>(
        &mut self,
        graph: &HananGraph,
        sources: &[GridPoint],
        is_target: F,
        bounds: Option<SearchBounds>,
    ) -> Result<GridPath, GraphError>
    where
        F: Fn(usize) -> bool,
    {
        let mut points = Vec::new();
        let cost =
            self.shortest_path_to_set_into(graph, sources, is_target, bounds, &mut points)?;
        Ok(GridPath { points, cost })
    }

    /// [`DijkstraWorkspace::shortest_path_to_set`] writing the path into a
    /// caller-owned buffer (cleared first) instead of allocating a
    /// [`GridPath`]; returns the path cost. This is the allocation-free
    /// entry point of the maze-routing hot loop.
    ///
    /// # Errors
    ///
    /// See [`DijkstraWorkspace::shortest_path_to_set`]. On error `out` is
    /// left cleared.
    pub fn shortest_path_to_set_into<F>(
        &mut self,
        graph: &HananGraph,
        sources: &[GridPoint],
        is_target: F,
        bounds: Option<SearchBounds>,
        out: &mut Vec<GridPoint>,
    ) -> Result<f64, GraphError>
    where
        F: Fn(usize) -> bool,
    {
        out.clear();
        if sources.is_empty() {
            return Err(GraphError::EmptyTerminalSet);
        }
        self.prepare(graph.len());
        let mut any_source = false;
        for &s in sources {
            if graph.is_blocked(s) {
                continue;
            }
            let idx = graph.index(s);
            if self.fresh(idx) || self.dist[idx] > 0.0 {
                self.stamp[idx] = self.epoch;
                self.dist[idx] = 0.0;
                self.prev[idx] = NO_PREV;
                self.counters.bump(Counter::DijkstraPushes);
                self.heap.push(Entry {
                    cost: 0.0,
                    idx: idx as u32,
                });
                any_source = true;
            }
        }
        if !any_source {
            return Err(GraphError::BlockedSource(sources[0]));
        }

        while let Some(Entry { cost, idx }) = self.heap.pop() {
            let idx = idx as usize;
            if cost > self.dist[idx] {
                continue; // stale heap entry
            }
            self.counters.bump(Counter::DijkstraPops);
            if is_target(idx) {
                return Ok(self.reconstruct_into(graph, idx, out));
            }
            let p = graph.point(idx);
            for (q, w) in graph.neighbors(p) {
                if let Some(b) = bounds {
                    if !b.contains(q) {
                        continue;
                    }
                }
                let qi = graph.index(q);
                let nd = cost + w;
                self.counters.bump(Counter::DijkstraRelaxations);
                if self.fresh(qi) || nd < self.dist[qi] {
                    self.stamp[qi] = self.epoch;
                    self.dist[qi] = nd;
                    self.prev[qi] = idx as u32;
                    self.counters.bump(Counter::DijkstraPushes);
                    self.heap.push(Entry {
                        cost: nd,
                        idx: qi as u32,
                    });
                }
            }
        }
        Err(GraphError::Unreachable {
            from: sources[0],
            to: None,
        })
    }

    /// [`DijkstraWorkspace::shortest_path_to_set`] driven by a prebuilt
    /// [`GridAdjacency`](crate::csr::GridAdjacency) instead of the
    /// point-based [`HananGraph::neighbors`] iterator.
    ///
    /// The CSR lists neighbors in exactly the iterator's order with the
    /// same `f64` edge costs, so the heap sees an identical push/pop
    /// sequence and the result is bit-identical to the unbounded
    /// point-based search — only the per-relaxation grid arithmetic and
    /// obstacle lookups are gone. There is no `bounds` parameter: bounded
    /// callers keep the point-based method.
    ///
    /// `adj` must be built for `graph` (see
    /// [`GridAdjacency::ensure`](crate::csr::GridAdjacency::ensure)).
    ///
    /// # Errors
    ///
    /// See [`DijkstraWorkspace::shortest_path_to_set`].
    ///
    /// # Panics
    ///
    /// Panics (on index out of range) if `adj` was built for a smaller
    /// graph.
    pub fn shortest_path_to_set_csr<F>(
        &mut self,
        graph: &HananGraph,
        adj: &crate::csr::GridAdjacency,
        sources: &[GridPoint],
        is_target: F,
    ) -> Result<GridPath, GraphError>
    where
        F: Fn(usize) -> bool,
    {
        let mut points = Vec::new();
        let cost =
            self.shortest_path_to_set_csr_into(graph, adj, sources, is_target, &mut points)?;
        Ok(GridPath { points, cost })
    }

    /// [`DijkstraWorkspace::shortest_path_to_set_csr`] writing the path
    /// into a caller-owned buffer (cleared first) instead of allocating a
    /// [`GridPath`]; returns the path cost.
    ///
    /// # Errors
    ///
    /// See [`DijkstraWorkspace::shortest_path_to_set`]. On error `out` is
    /// left cleared.
    ///
    /// # Panics
    ///
    /// Panics (on index out of range) if `adj` was built for a smaller
    /// graph.
    pub fn shortest_path_to_set_csr_into<F>(
        &mut self,
        graph: &HananGraph,
        adj: &crate::csr::GridAdjacency,
        sources: &[GridPoint],
        is_target: F,
        out: &mut Vec<GridPoint>,
    ) -> Result<f64, GraphError>
    where
        F: Fn(usize) -> bool,
    {
        out.clear();
        if sources.is_empty() {
            return Err(GraphError::EmptyTerminalSet);
        }
        self.prepare(graph.len());
        let mut any_source = false;
        for &s in sources {
            if graph.is_blocked(s) {
                continue;
            }
            let idx = graph.index(s);
            if self.fresh(idx) || self.dist[idx] > 0.0 {
                self.stamp[idx] = self.epoch;
                self.dist[idx] = 0.0;
                self.prev[idx] = NO_PREV;
                self.counters.bump(Counter::DijkstraPushes);
                self.heap.push(Entry {
                    cost: 0.0,
                    idx: idx as u32,
                });
                any_source = true;
            }
        }
        if !any_source {
            return Err(GraphError::BlockedSource(sources[0]));
        }

        while let Some(Entry { cost, idx }) = self.heap.pop() {
            let idx = idx as usize;
            if cost > self.dist[idx] {
                continue; // stale heap entry
            }
            self.counters.bump(Counter::DijkstraPops);
            if is_target(idx) {
                return Ok(self.reconstruct_into(graph, idx, out));
            }
            for (qi, w) in adj.neighbors(idx) {
                let qi = qi as usize;
                let nd = cost + w;
                self.counters.bump(Counter::DijkstraRelaxations);
                if self.fresh(qi) || nd < self.dist[qi] {
                    self.stamp[qi] = self.epoch;
                    self.dist[qi] = nd;
                    self.prev[qi] = idx as u32;
                    self.counters.bump(Counter::DijkstraPushes);
                    self.heap.push(Entry {
                        cost: nd,
                        idx: qi as u32,
                    });
                }
            }
        }
        Err(GraphError::Unreachable {
            from: sources[0],
            to: None,
        })
    }

    /// [`DijkstraWorkspace::shortest_path_to_set`] under an explicit
    /// [`QueuePolicy`].
    ///
    /// `targets` is the A* hint: under [`QueuePolicy::AStar`] it must
    /// include every vertex `is_target` accepts (the lower bound must be
    /// zero on all targets, or the first settled target is not guaranteed
    /// cheapest). The other policies ignore it; pass `&[]`. `Auto`,
    /// `Heap`, and `Dial` return bit-identical results (DESIGN.md §12.3);
    /// `AStar` returns the same cost bits but possibly a different
    /// equal-cost path (§12.4).
    ///
    /// # Errors
    ///
    /// See [`DijkstraWorkspace::shortest_path_to_set`].
    pub fn shortest_path_to_set_policy<F>(
        &mut self,
        graph: &HananGraph,
        sources: &[GridPoint],
        is_target: F,
        bounds: Option<SearchBounds>,
        policy: QueuePolicy,
        targets: &[GridPoint],
    ) -> Result<GridPath, GraphError>
    where
        F: Fn(usize) -> bool,
    {
        let mut points = Vec::new();
        let cost = self.shortest_path_to_set_policy_into(
            graph,
            sources,
            is_target,
            bounds,
            policy,
            targets,
            &mut points,
        )?;
        Ok(GridPath { points, cost })
    }

    /// [`DijkstraWorkspace::shortest_path_to_set_policy`] writing the path
    /// into a caller-owned buffer (cleared first); returns the path cost.
    /// This is the allocation-free policy-dispatched entry point of the
    /// maze-routing hot loop.
    ///
    /// # Errors
    ///
    /// See [`DijkstraWorkspace::shortest_path_to_set`]. On error `out` is
    /// left cleared.
    #[allow(clippy::too_many_arguments)]
    pub fn shortest_path_to_set_policy_into<F>(
        &mut self,
        graph: &HananGraph,
        sources: &[GridPoint],
        is_target: F,
        bounds: Option<SearchBounds>,
        policy: QueuePolicy,
        targets: &[GridPoint],
        out: &mut Vec<GridPoint>,
    ) -> Result<f64, GraphError>
    where
        F: Fn(usize) -> bool,
    {
        match policy.resolve(graph.integer_cost_ceiling(), !targets.is_empty()) {
            ResolvedQueue::Heap => {
                self.shortest_path_to_set_into(graph, sources, is_target, bounds, out)
            }
            ResolvedQueue::Dial(ceiling) => {
                self.dial_search_point(graph, sources, is_target, bounds, ceiling, out)
            }
            ResolvedQueue::AStar => {
                self.astar_search_point(graph, sources, is_target, bounds, targets, out)
            }
        }
    }

    /// [`DijkstraWorkspace::shortest_path_to_set_csr`] under an explicit
    /// [`QueuePolicy`]. See
    /// [`DijkstraWorkspace::shortest_path_to_set_policy`] for the
    /// `targets` hint contract.
    ///
    /// # Errors
    ///
    /// See [`DijkstraWorkspace::shortest_path_to_set`].
    ///
    /// # Panics
    ///
    /// Panics (on index out of range) if `adj` was built for a smaller
    /// graph.
    pub fn shortest_path_to_set_csr_policy<F>(
        &mut self,
        graph: &HananGraph,
        adj: &crate::csr::GridAdjacency,
        sources: &[GridPoint],
        is_target: F,
        policy: QueuePolicy,
        targets: &[GridPoint],
    ) -> Result<GridPath, GraphError>
    where
        F: Fn(usize) -> bool,
    {
        let mut points = Vec::new();
        let cost = self.shortest_path_to_set_csr_policy_into(
            graph,
            adj,
            sources,
            is_target,
            policy,
            targets,
            &mut points,
        )?;
        Ok(GridPath { points, cost })
    }

    /// [`DijkstraWorkspace::shortest_path_to_set_csr_policy`] writing the
    /// path into a caller-owned buffer (cleared first); returns the path
    /// cost.
    ///
    /// # Errors
    ///
    /// See [`DijkstraWorkspace::shortest_path_to_set`]. On error `out` is
    /// left cleared.
    ///
    /// # Panics
    ///
    /// Panics (on index out of range) if `adj` was built for a smaller
    /// graph.
    #[allow(clippy::too_many_arguments)]
    pub fn shortest_path_to_set_csr_policy_into<F>(
        &mut self,
        graph: &HananGraph,
        adj: &crate::csr::GridAdjacency,
        sources: &[GridPoint],
        is_target: F,
        policy: QueuePolicy,
        targets: &[GridPoint],
        out: &mut Vec<GridPoint>,
    ) -> Result<f64, GraphError>
    where
        F: Fn(usize) -> bool,
    {
        match policy.resolve(graph.integer_cost_ceiling(), !targets.is_empty()) {
            ResolvedQueue::Heap => {
                self.shortest_path_to_set_csr_into(graph, adj, sources, is_target, out)
            }
            ResolvedQueue::Dial(ceiling) => {
                self.dial_search_csr(graph, adj, sources, is_target, ceiling, out)
            }
            ResolvedQueue::AStar => {
                self.astar_search_csr(graph, adj, sources, is_target, targets, out)
            }
        }
    }

    /// Seeds a query's sources into `dist`/`prev` and the Dial bucket
    /// queue (all at key 0). Returns whether any source was usable.
    fn dial_seed(&mut self, graph: &HananGraph, sources: &[GridPoint], ceiling: u64) -> bool {
        self.prepare(graph.len());
        self.bucket.reset(ceiling.max(1) as usize);
        let mut any_source = false;
        for &s in sources {
            if graph.is_blocked(s) {
                continue;
            }
            let idx = graph.index(s);
            if self.fresh(idx) || self.dist[idx] > 0.0 {
                self.stamp[idx] = self.epoch;
                self.dist[idx] = 0.0;
                self.prev[idx] = NO_PREV;
                self.counters.bump(Counter::DijkstraPushes);
                self.bucket.push(0, idx as u32);
                any_source = true;
            }
        }
        any_source
    }

    /// The point-based Dial search: the heap loop of
    /// [`DijkstraWorkspace::shortest_path_to_set_into`] with the binary
    /// heap replaced by the bucket queue. Bit-identical to the heap path
    /// (DESIGN.md §12.3): bucket pop order is `(cost, vertex index)` and
    /// the `done` stamp reproduces the heap's stale-entry skip, so
    /// `dist`/`prev`, the returned path, its cost bits, and the
    /// pops/relaxations/pushes counters all match exactly.
    fn dial_search_point<F>(
        &mut self,
        graph: &HananGraph,
        sources: &[GridPoint],
        is_target: F,
        bounds: Option<SearchBounds>,
        ceiling: u64,
        out: &mut Vec<GridPoint>,
    ) -> Result<f64, GraphError>
    where
        F: Fn(usize) -> bool,
    {
        out.clear();
        if sources.is_empty() {
            return Err(GraphError::EmptyTerminalSet);
        }
        if !self.dial_seed(graph, sources, ceiling) {
            return Err(GraphError::BlockedSource(sources[0]));
        }
        let mut scans = 0u64;
        let result = loop {
            let Some((_key, idx)) = self.bucket.pop_min(&mut scans) else {
                break Err(GraphError::Unreachable {
                    from: sources[0],
                    to: None,
                });
            };
            let idx = idx as usize;
            if self.done[idx] == self.epoch {
                continue; // stale duplicate (the heap's `cost > dist` skip)
            }
            self.done[idx] = self.epoch;
            self.counters.bump(Counter::DijkstraPops);
            if is_target(idx) {
                break Ok(self.reconstruct_into(graph, idx, out));
            }
            let cost = self.dist[idx];
            let p = graph.point(idx);
            for (q, w) in graph.neighbors(p) {
                if let Some(b) = bounds {
                    if !b.contains(q) {
                        continue;
                    }
                }
                let qi = graph.index(q);
                let nd = cost + w;
                self.counters.bump(Counter::DijkstraRelaxations);
                if self.fresh(qi) || nd < self.dist[qi] {
                    self.stamp[qi] = self.epoch;
                    self.dist[qi] = nd;
                    self.prev[qi] = idx as u32;
                    self.counters.bump(Counter::DijkstraPushes);
                    self.bucket.push(nd as u64, qi as u32);
                }
            }
        };
        self.counters.add(Counter::DijkstraBucketScans, scans);
        result
    }

    /// The CSR-driven Dial search; see
    /// [`DijkstraWorkspace::dial_search_point`] for the bit-identity
    /// argument (the CSR lists neighbors in the iterator's order, so the
    /// push sequence is unchanged).
    fn dial_search_csr<F>(
        &mut self,
        graph: &HananGraph,
        adj: &crate::csr::GridAdjacency,
        sources: &[GridPoint],
        is_target: F,
        ceiling: u64,
        out: &mut Vec<GridPoint>,
    ) -> Result<f64, GraphError>
    where
        F: Fn(usize) -> bool,
    {
        out.clear();
        if sources.is_empty() {
            return Err(GraphError::EmptyTerminalSet);
        }
        if !self.dial_seed(graph, sources, ceiling) {
            return Err(GraphError::BlockedSource(sources[0]));
        }
        let mut scans = 0u64;
        let result = loop {
            let Some((_key, idx)) = self.bucket.pop_min(&mut scans) else {
                break Err(GraphError::Unreachable {
                    from: sources[0],
                    to: None,
                });
            };
            let idx = idx as usize;
            if self.done[idx] == self.epoch {
                continue; // stale duplicate (the heap's `cost > dist` skip)
            }
            self.done[idx] = self.epoch;
            self.counters.bump(Counter::DijkstraPops);
            if is_target(idx) {
                break Ok(self.reconstruct_into(graph, idx, out));
            }
            let cost = self.dist[idx];
            for (qi, w) in adj.neighbors(idx) {
                let qi = qi as usize;
                let nd = cost + w;
                self.counters.bump(Counter::DijkstraRelaxations);
                if self.fresh(qi) || nd < self.dist[qi] {
                    self.stamp[qi] = self.epoch;
                    self.dist[qi] = nd;
                    self.prev[qi] = idx as u32;
                    self.counters.bump(Counter::DijkstraPushes);
                    self.bucket.push(nd as u64, qi as u32);
                }
            }
        };
        self.counters.add(Counter::DijkstraBucketScans, scans);
        result
    }

    /// Seeds a query's sources into `dist`/`prev` and the binary heap at
    /// their `f = 0 + h` keys (the bound must already be prepared).
    /// Returns whether any source was usable.
    fn astar_seed(&mut self, graph: &HananGraph, sources: &[GridPoint]) -> bool {
        let mut any_source = false;
        for &s in sources {
            if graph.is_blocked(s) {
                continue;
            }
            let idx = graph.index(s);
            if self.fresh(idx) || self.dist[idx] > 0.0 {
                self.stamp[idx] = self.epoch;
                self.dist[idx] = 0.0;
                self.prev[idx] = NO_PREV;
                self.counters.bump(Counter::DijkstraPushes);
                self.heap.push(Entry {
                    cost: self.bound.eval(s) as f64,
                    idx: idx as u32,
                });
                any_source = true;
            }
        }
        any_source
    }

    /// The point-based A* search: the binary heap ordered by `f = g + h`
    /// with [`RectilinearBound`] as `h`. All arithmetic stays exact
    /// (integer-valued `f64`s below 2⁵³), so the returned cost bits match
    /// the oracle's; the path geometry may differ on cost ties
    /// (DESIGN.md §12.4).
    fn astar_search_point<F>(
        &mut self,
        graph: &HananGraph,
        sources: &[GridPoint],
        is_target: F,
        bounds: Option<SearchBounds>,
        targets: &[GridPoint],
        out: &mut Vec<GridPoint>,
    ) -> Result<f64, GraphError>
    where
        F: Fn(usize) -> bool,
    {
        out.clear();
        if sources.is_empty() {
            return Err(GraphError::EmptyTerminalSet);
        }
        self.prepare(graph.len());
        self.bound.prepare(graph, targets);
        if !self.astar_seed(graph, sources) {
            return Err(GraphError::BlockedSource(sources[0]));
        }
        while let Some(Entry { cost: _f, idx }) = self.heap.pop() {
            let idx = idx as usize;
            if self.done[idx] == self.epoch {
                continue; // stale duplicate
            }
            self.done[idx] = self.epoch;
            self.counters.bump(Counter::DijkstraPops);
            if is_target(idx) {
                return Ok(self.reconstruct_into(graph, idx, out));
            }
            let g = self.dist[idx];
            let p = graph.point(idx);
            for (q, w) in graph.neighbors(p) {
                if let Some(b) = bounds {
                    if !b.contains(q) {
                        continue;
                    }
                }
                let qi = graph.index(q);
                let nd = g + w;
                self.counters.bump(Counter::DijkstraRelaxations);
                if self.fresh(qi) || nd < self.dist[qi] {
                    self.stamp[qi] = self.epoch;
                    self.dist[qi] = nd;
                    self.prev[qi] = idx as u32;
                    self.counters.bump(Counter::DijkstraPushes);
                    self.heap.push(Entry {
                        cost: nd + self.bound.eval(q) as f64,
                        idx: qi as u32,
                    });
                }
            }
        }
        Err(GraphError::Unreachable {
            from: sources[0],
            to: None,
        })
    }

    /// The CSR-driven A* search; one `graph.point` call per improving
    /// relaxation pays for the `h` evaluation.
    fn astar_search_csr<F>(
        &mut self,
        graph: &HananGraph,
        adj: &crate::csr::GridAdjacency,
        sources: &[GridPoint],
        is_target: F,
        targets: &[GridPoint],
        out: &mut Vec<GridPoint>,
    ) -> Result<f64, GraphError>
    where
        F: Fn(usize) -> bool,
    {
        out.clear();
        if sources.is_empty() {
            return Err(GraphError::EmptyTerminalSet);
        }
        self.prepare(graph.len());
        self.bound.prepare(graph, targets);
        if !self.astar_seed(graph, sources) {
            return Err(GraphError::BlockedSource(sources[0]));
        }
        while let Some(Entry { cost: _f, idx }) = self.heap.pop() {
            let idx = idx as usize;
            if self.done[idx] == self.epoch {
                continue; // stale duplicate
            }
            self.done[idx] = self.epoch;
            self.counters.bump(Counter::DijkstraPops);
            if is_target(idx) {
                return Ok(self.reconstruct_into(graph, idx, out));
            }
            let g = self.dist[idx];
            for (qi, w) in adj.neighbors(idx) {
                let qi = qi as usize;
                let nd = g + w;
                self.counters.bump(Counter::DijkstraRelaxations);
                if self.fresh(qi) || nd < self.dist[qi] {
                    self.stamp[qi] = self.epoch;
                    self.dist[qi] = nd;
                    self.prev[qi] = idx as u32;
                    self.counters.bump(Counter::DijkstraPushes);
                    self.heap.push(Entry {
                        cost: nd + self.bound.eval(graph.point(qi)) as f64,
                        idx: qi as u32,
                    });
                }
            }
        }
        Err(GraphError::Unreachable {
            from: sources[0],
            to: None,
        })
    }

    /// Full single-source Dijkstra; returns the distance to every vertex
    /// (`f64::INFINITY` where unreachable).
    ///
    /// # Errors
    ///
    /// [`GraphError::BlockedSource`] if the source vertex is blocked.
    pub fn distances_from(
        &mut self,
        graph: &HananGraph,
        source: GridPoint,
    ) -> Result<Vec<f64>, GraphError> {
        if graph.is_blocked(source) {
            return Err(GraphError::BlockedSource(source));
        }
        self.prepare(graph.len());
        let s = graph.index(source);
        self.stamp[s] = self.epoch;
        self.dist[s] = 0.0;
        self.prev[s] = NO_PREV;
        self.counters.bump(Counter::DijkstraPushes);
        self.heap.push(Entry {
            cost: 0.0,
            idx: s as u32,
        });
        while let Some(Entry { cost, idx }) = self.heap.pop() {
            let idx = idx as usize;
            if cost > self.dist[idx] {
                continue;
            }
            self.counters.bump(Counter::DijkstraPops);
            let p = graph.point(idx);
            for (q, w) in graph.neighbors(p) {
                let qi = graph.index(q);
                let nd = cost + w;
                self.counters.bump(Counter::DijkstraRelaxations);
                if self.fresh(qi) || nd < self.dist[qi] {
                    self.stamp[qi] = self.epoch;
                    self.dist[qi] = nd;
                    self.prev[qi] = idx as u32;
                    self.counters.bump(Counter::DijkstraPushes);
                    self.heap.push(Entry {
                        cost: nd,
                        idx: qi as u32,
                    });
                }
            }
        }
        Ok((0..graph.len())
            .map(|i| {
                if self.stamp[i] == self.epoch {
                    self.dist[i]
                } else {
                    f64::INFINITY
                }
            })
            .collect())
    }

    fn reconstruct_into(&self, graph: &HananGraph, target: usize, out: &mut Vec<GridPoint>) -> f64 {
        out.clear();
        let mut cur = target;
        loop {
            out.push(graph.point(cur));
            let prev = self.prev[cur];
            if prev == NO_PREV {
                break;
            }
            cur = prev as usize;
        }
        out.reverse();
        self.dist[target]
    }
}

/// One-shot shortest path between two vertices.
///
/// # Errors
///
/// See [`DijkstraWorkspace::shortest_path_to_set`].
pub fn shortest_path(
    graph: &HananGraph,
    from: GridPoint,
    to: GridPoint,
) -> Result<GridPath, GraphError> {
    shortest_path_in(&mut DijkstraWorkspace::new(), graph, from, to)
}

/// Shortest path between two vertices using a caller-owned workspace.
///
/// # Errors
///
/// See [`DijkstraWorkspace::shortest_path_to_set`].
pub fn shortest_path_in(
    ws: &mut DijkstraWorkspace,
    graph: &HananGraph,
    from: GridPoint,
    to: GridPoint,
) -> Result<GridPath, GraphError> {
    let target_idx = graph.index(to);
    ws.shortest_path_to_set(graph, &[from], |i| i == target_idx, None)
        .map_err(|e| match e {
            GraphError::Unreachable { from, .. } => GraphError::Unreachable { from, to: Some(to) },
            other => other,
        })
}

/// One-shot multi-source shortest path to a target set.
///
/// # Errors
///
/// See [`DijkstraWorkspace::shortest_path_to_set`].
pub fn shortest_path_to_set<F>(
    graph: &HananGraph,
    sources: &[GridPoint],
    is_target: F,
) -> Result<GridPath, GraphError>
where
    F: Fn(usize) -> bool,
{
    DijkstraWorkspace::new().shortest_path_to_set(graph, sources, is_target, None)
}

/// Multi-source shortest path to a target set using a caller-owned
/// workspace (equivalent to
/// [`DijkstraWorkspace::shortest_path_to_set`] without bounds; provided for
/// symmetry with the other `_in` entry points).
///
/// # Errors
///
/// See [`DijkstraWorkspace::shortest_path_to_set`].
pub fn shortest_path_to_set_in<F>(
    ws: &mut DijkstraWorkspace,
    graph: &HananGraph,
    sources: &[GridPoint],
    is_target: F,
) -> Result<GridPath, GraphError>
where
    F: Fn(usize) -> bool,
{
    ws.shortest_path_to_set(graph, sources, is_target, None)
}

/// One-shot full single-source distances.
///
/// # Errors
///
/// See [`DijkstraWorkspace::distances_from`].
pub fn distances_from(graph: &HananGraph, source: GridPoint) -> Result<Vec<f64>, GraphError> {
    DijkstraWorkspace::new().distances_from(graph, source)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_grid(h: usize, v: usize, m: usize) -> HananGraph {
        HananGraph::uniform(h, v, m, 1.0, 1.0, 3.0)
    }

    #[test]
    fn straight_line_cost_is_manhattan() {
        let g = open_grid(5, 5, 1);
        let p = shortest_path(&g, GridPoint::new(0, 0, 0), GridPoint::new(4, 3, 0)).unwrap();
        assert_eq!(p.cost, 7.0);
        assert_eq!(p.source(), GridPoint::new(0, 0, 0));
        assert_eq!(p.target(), GridPoint::new(4, 3, 0));
        // Consecutive points are neighbors.
        for (a, b) in p.edges() {
            assert_eq!(a.grid_distance(b), 1);
        }
    }

    #[test]
    fn path_cost_equals_sum_of_edge_costs() {
        let g = HananGraph::with_costs(4, 3, 2, vec![2.0, 5.0, 1.0], vec![4.0, 4.0], 3.0).unwrap();
        let p = shortest_path(&g, GridPoint::new(0, 0, 0), GridPoint::new(3, 2, 1)).unwrap();
        let sum: f64 = p
            .edges()
            .map(|(a, b)| g.edge_cost(a, b).expect("path edges are grid edges"))
            .sum();
        assert!((p.cost - sum).abs() < 1e-9);
    }

    #[test]
    fn routes_around_obstacle_wall() {
        // A vertical wall with a single gap forces a detour.
        let mut g = open_grid(5, 5, 1);
        for v in 0..4 {
            g.add_obstacle_vertex(GridPoint::new(2, v, 0)).unwrap();
        }
        let p = shortest_path(&g, GridPoint::new(0, 0, 0), GridPoint::new(4, 0, 0)).unwrap();
        // Must go up to row 4, across, and back down: 4 + 4 + 4 + ... check
        // exact: up 4, right 4, down 4 = 12.
        assert_eq!(p.cost, 12.0);
        assert!(p.points.iter().all(|&q| !g.is_blocked(q)));
    }

    #[test]
    fn uses_other_layer_when_cheaper() {
        // Fully blocked layer 0 except endpoints: path must via up and back.
        let mut g = open_grid(3, 1, 2);
        g.add_obstacle_vertex(GridPoint::new(1, 0, 0)).unwrap();
        let p = shortest_path(&g, GridPoint::new(0, 0, 0), GridPoint::new(2, 0, 0)).unwrap();
        // via(3) + 2 horizontal + via(3) = 8.
        assert_eq!(p.cost, 8.0);
    }

    #[test]
    fn unreachable_target_is_an_error() {
        let mut g = open_grid(3, 3, 1);
        // Wall off the right column completely.
        for v in 0..3 {
            g.add_obstacle_vertex(GridPoint::new(1, v, 0)).unwrap();
        }
        let err = shortest_path(&g, GridPoint::new(0, 0, 0), GridPoint::new(2, 2, 0)).unwrap_err();
        assert!(matches!(err, GraphError::Unreachable { .. }));
    }

    #[test]
    fn blocked_source_is_an_error() {
        let mut g = open_grid(3, 3, 1);
        g.add_obstacle_vertex(GridPoint::new(0, 0, 0)).unwrap();
        let err = shortest_path(&g, GridPoint::new(0, 0, 0), GridPoint::new(2, 2, 0)).unwrap_err();
        assert_eq!(err, GraphError::BlockedSource(GridPoint::new(0, 0, 0)));
    }

    #[test]
    fn empty_sources_is_an_error() {
        let g = open_grid(3, 3, 1);
        let err = shortest_path_to_set(&g, &[], |_| true).unwrap_err();
        assert_eq!(err, GraphError::EmptyTerminalSet);
    }

    #[test]
    fn multi_source_picks_nearest_source() {
        let g = open_grid(10, 1, 1);
        let sources = [GridPoint::new(0, 0, 0), GridPoint::new(8, 0, 0)];
        let target = g.index(GridPoint::new(6, 0, 0));
        let p = shortest_path_to_set(&g, &sources, |i| i == target).unwrap();
        assert_eq!(p.cost, 2.0);
        assert_eq!(p.source(), GridPoint::new(8, 0, 0));
    }

    #[test]
    fn source_in_target_set_gives_trivial_path() {
        let g = open_grid(3, 3, 1);
        let s = GridPoint::new(1, 1, 0);
        let si = g.index(s);
        let p = shortest_path_to_set(&g, &[s], |i| i == si).unwrap();
        assert_eq!(p.cost, 0.0);
        assert_eq!(p.points, vec![s]);
    }

    #[test]
    fn distances_match_individual_paths() {
        let mut g = open_grid(6, 6, 2);
        g.add_obstacle_vertex(GridPoint::new(2, 2, 0)).unwrap();
        g.add_obstacle_vertex(GridPoint::new(3, 2, 0)).unwrap();
        let src = GridPoint::new(0, 0, 0);
        let dist = distances_from(&g, src).unwrap();
        for idx in (0..g.len()).step_by(7) {
            let p = g.point(idx);
            if g.is_blocked(p) {
                assert!(dist[idx].is_infinite());
                continue;
            }
            let path = shortest_path(&g, src, p).unwrap();
            assert!(
                (dist[idx] - path.cost).abs() < 1e-9,
                "distance mismatch at {p}"
            );
        }
    }

    #[test]
    fn bounded_search_cannot_leave_window() {
        let g = open_grid(10, 10, 1);
        let bounds = SearchBounds {
            h_lo: 0,
            h_hi: 4,
            v_lo: 0,
            v_hi: 4,
        };
        let target = g.index(GridPoint::new(9, 9, 0));
        let err = SearchSpace::new()
            .shortest_path_to_set(
                &g,
                &[GridPoint::new(0, 0, 0)],
                |i| i == target,
                Some(bounds),
            )
            .unwrap_err();
        assert!(matches!(err, GraphError::Unreachable { .. }));
    }

    #[test]
    fn bounds_around_clips_to_graph() {
        let g = open_grid(6, 6, 1);
        let b = SearchBounds::around(&g, [GridPoint::new(1, 1, 0), GridPoint::new(4, 2, 0)], 3);
        assert_eq!((b.h_lo, b.h_hi, b.v_lo, b.v_hi), (0, 5, 0, 5));
        assert!(b.contains(GridPoint::new(0, 0, 0)));
    }

    #[test]
    fn csr_search_is_bit_identical_to_point_based_search() {
        let mut g = open_grid(9, 7, 2);
        for &(h, v, m) in &[(2, 0, 0), (2, 1, 0), (2, 2, 0), (5, 4, 1), (6, 4, 1)] {
            g.add_obstacle_vertex(GridPoint::new(h, v, m)).unwrap();
        }
        let mut adj = crate::csr::GridAdjacency::new();
        adj.ensure(&g);
        let mut ws = DijkstraWorkspace::new();
        let sources = [GridPoint::new(0, 0, 0), GridPoint::new(8, 6, 1)];
        // Exercise several targets, interleaving the two methods on the
        // same workspace so epoch reuse is covered too.
        for target in [(4, 3, 0), (2, 6, 1), (7, 0, 0)] {
            let t = g.index(GridPoint::new(target.0, target.1, target.2));
            let a = ws
                .shortest_path_to_set(&g, &sources, |i| i == t, None)
                .unwrap();
            let b = ws
                .shortest_path_to_set_csr(&g, &adj, &sources, |i| i == t)
                .unwrap();
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            assert_eq!(a.points, b.points);
        }
    }

    #[test]
    fn counters_track_pops_relaxations_and_pushes() {
        let g = open_grid(6, 6, 1);
        let mut ws = DijkstraWorkspace::new();
        let t = g.index(GridPoint::new(5, 5, 0));
        ws.shortest_path_to_set(&g, &[GridPoint::new(0, 0, 0)], |i| i == t, None)
            .unwrap();
        let after = ws.counters;
        assert!(after.get(Counter::DijkstraPops) > 0);
        assert!(after.get(Counter::DijkstraRelaxations) >= after.get(Counter::DijkstraPops));
        assert!(after.get(Counter::DijkstraPushes) > 0);
        // A second identical query adds an identical delta.
        ws.shortest_path_to_set(&g, &[GridPoint::new(0, 0, 0)], |i| i == t, None)
            .unwrap();
        let d = ws.counters.delta_since(&after);
        assert_eq!(
            d.get(Counter::DijkstraPops),
            after.get(Counter::DijkstraPops)
        );
    }

    /// An irregular integer-cost graph with obstacles, shared by the
    /// policy tests.
    fn costed_grid() -> HananGraph {
        let mut g = HananGraph::with_costs(
            9,
            7,
            2,
            vec![2.0, 7.0, 1.0, 4.0, 3.0, 1.0, 9.0, 2.0],
            vec![5.0, 1.0, 1.0, 6.0, 2.0, 3.0],
            4.0,
        )
        .unwrap();
        for &(h, v, m) in &[(2, 0, 0), (2, 1, 0), (2, 2, 0), (5, 4, 1), (6, 4, 1)] {
            g.add_obstacle_vertex(GridPoint::new(h, v, m)).unwrap();
        }
        g
    }

    #[test]
    fn dial_is_bit_identical_to_heap_including_counters() {
        let g = costed_grid();
        let sources = [GridPoint::new(0, 0, 0), GridPoint::new(8, 6, 1)];
        let mut heap_ws = DijkstraWorkspace::new();
        let mut dial_ws = DijkstraWorkspace::new();
        for target in [(4, 3, 0), (2, 6, 1), (7, 0, 0), (0, 6, 0)] {
            let t = g.index(GridPoint::new(target.0, target.1, target.2));
            let before_heap = heap_ws.counters;
            let before_dial = dial_ws.counters;
            let a = heap_ws
                .shortest_path_to_set_policy(&g, &sources, |i| i == t, None, QueuePolicy::Heap, &[])
                .unwrap();
            let b = dial_ws
                .shortest_path_to_set_policy(&g, &sources, |i| i == t, None, QueuePolicy::Dial, &[])
                .unwrap();
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            assert_eq!(a.points, b.points);
            // The op counters are acceptance targets: pops, relaxations,
            // and pushes must match the oracle exactly.
            let dh = heap_ws.counters.delta_since(&before_heap);
            let dd = dial_ws.counters.delta_since(&before_dial);
            for c in [
                Counter::DijkstraPops,
                Counter::DijkstraRelaxations,
                Counter::DijkstraPushes,
            ] {
                assert_eq!(dh.get(c), dd.get(c), "{c:?} diverged for {target:?}");
            }
            assert_eq!(dh.get(Counter::DijkstraBucketScans), 0);
        }
    }

    #[test]
    fn auto_resolves_to_dial_on_integer_costs() {
        let g = costed_grid();
        assert!(g.integer_cost_ceiling().is_some());
        let mut ws = DijkstraWorkspace::new();
        let t = g.index(GridPoint::new(7, 0, 0));
        let before = ws.counters;
        ws.shortest_path_to_set_policy(
            &g,
            &[GridPoint::new(0, 0, 0)],
            |i| i == t,
            None,
            QueuePolicy::Auto,
            &[],
        )
        .unwrap();
        // The Dial path is the only one that can advance the cursor.
        let d = ws.counters.delta_since(&before);
        assert!(d.get(Counter::DijkstraBucketScans) > 0);
    }

    #[test]
    fn dial_falls_back_to_heap_on_fractional_costs() {
        let g =
            HananGraph::with_costs(4, 4, 1, vec![1.5, 2.0, 1.0], vec![1.0, 2.5, 1.0], 3.0).unwrap();
        assert_eq!(g.integer_cost_ceiling(), None);
        let mut ws = DijkstraWorkspace::new();
        let t = g.index(GridPoint::new(3, 3, 0));
        let before = ws.counters;
        let p = ws
            .shortest_path_to_set_policy(
                &g,
                &[GridPoint::new(0, 0, 0)],
                |i| i == t,
                None,
                QueuePolicy::Dial,
                &[],
            )
            .unwrap();
        assert_eq!(p.cost, 1.5 + 2.0 + 1.0 + 1.0 + 2.5 + 1.0);
        let d = ws.counters.delta_since(&before);
        assert_eq!(d.get(Counter::DijkstraBucketScans), 0, "fallback used heap");
    }

    #[test]
    fn csr_policy_matches_point_policy_for_all_policies() {
        let g = costed_grid();
        let mut adj = crate::csr::GridAdjacency::new();
        adj.ensure(&g);
        let sources = [GridPoint::new(0, 0, 0), GridPoint::new(8, 6, 1)];
        let mut ws = DijkstraWorkspace::new();
        for target in [(4, 3, 0), (2, 6, 1)] {
            let tp = GridPoint::new(target.0, target.1, target.2);
            let t = g.index(tp);
            let hint = [tp];
            for policy in [
                QueuePolicy::Auto,
                QueuePolicy::Heap,
                QueuePolicy::Dial,
                QueuePolicy::AStar,
            ] {
                let a = ws
                    .shortest_path_to_set_policy(&g, &sources, |i| i == t, None, policy, &hint)
                    .unwrap();
                let b = ws
                    .shortest_path_to_set_csr_policy(&g, &adj, &sources, |i| i == t, policy, &hint)
                    .unwrap();
                assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "{policy:?}");
                assert_eq!(a.points, b.points, "{policy:?}");
            }
        }
    }

    #[test]
    fn astar_matches_oracle_cost_bits_with_fewer_pops() {
        let g = costed_grid();
        let mut ws = DijkstraWorkspace::new();
        let src = [GridPoint::new(0, 0, 0)];
        for target in [(8, 6, 1), (4, 3, 0), (7, 0, 0)] {
            let tp = GridPoint::new(target.0, target.1, target.2);
            let t = g.index(tp);
            let before = ws.counters;
            let oracle = ws
                .shortest_path_to_set_policy(&g, &src, |i| i == t, None, QueuePolicy::Heap, &[])
                .unwrap();
            let heap_pops = ws.counters.delta_since(&before).get(Counter::DijkstraPops);
            let before = ws.counters;
            let astar = ws
                .shortest_path_to_set_policy(&g, &src, |i| i == t, None, QueuePolicy::AStar, &[tp])
                .unwrap();
            let astar_pops = ws.counters.delta_since(&before).get(Counter::DijkstraPops);
            // Same cost bits (§12.4); the geometry may legally differ.
            assert_eq!(oracle.cost.to_bits(), astar.cost.to_bits());
            assert!(
                astar_pops <= heap_pops,
                "A* popped {astar_pops} > oracle {heap_pops} for {target:?}"
            );
            // The A* path is still a valid grid path of the same cost.
            let sum: f64 = astar
                .points
                .windows(2)
                .map(|w| g.edge_cost(w[0], w[1]).expect("grid edge"))
                .sum();
            assert_eq!(sum.to_bits(), astar.cost.to_bits());
        }
    }

    #[test]
    fn astar_without_hint_falls_back_to_dial() {
        let g = costed_grid();
        let mut ws = DijkstraWorkspace::new();
        let t = g.index(GridPoint::new(7, 0, 0));
        let src = [GridPoint::new(0, 0, 0)];
        let a = ws
            .shortest_path_to_set_policy(&g, &src, |i| i == t, None, QueuePolicy::AStar, &[])
            .unwrap();
        let b = ws
            .shortest_path_to_set_policy(&g, &src, |i| i == t, None, QueuePolicy::Heap, &[])
            .unwrap();
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        assert_eq!(a.points, b.points, "hint-less AStar must act as Dial");
    }

    #[test]
    fn dial_respects_search_bounds() {
        let g = open_grid(10, 10, 1);
        let bounds = SearchBounds {
            h_lo: 0,
            h_hi: 4,
            v_lo: 0,
            v_hi: 4,
        };
        let target = g.index(GridPoint::new(9, 9, 0));
        let err = DijkstraWorkspace::new()
            .shortest_path_to_set_policy(
                &g,
                &[GridPoint::new(0, 0, 0)],
                |i| i == target,
                Some(bounds),
                QueuePolicy::Dial,
                &[],
            )
            .unwrap_err();
        assert!(matches!(err, GraphError::Unreachable { .. }));
    }

    #[test]
    fn search_space_reuse_is_consistent() {
        let g = open_grid(8, 8, 2);
        let mut space = SearchSpace::new();
        let t1 = g.index(GridPoint::new(7, 7, 1));
        let t2 = g.index(GridPoint::new(3, 0, 0));
        let a = space
            .shortest_path_to_set(&g, &[GridPoint::new(0, 0, 0)], |i| i == t1, None)
            .unwrap();
        let b = space
            .shortest_path_to_set(&g, &[GridPoint::new(0, 0, 0)], |i| i == t2, None)
            .unwrap();
        // 7 + 7 + via(3) and 3.
        assert_eq!(a.cost, 17.0);
        assert_eq!(b.cost, 3.0);
        // And again the first query, identically.
        let a2 = space
            .shortest_path_to_set(&g, &[GridPoint::new(0, 0, 0)], |i| i == t1, None)
            .unwrap();
        assert_eq!(a2.cost, a.cost);
    }
}
