//! Single- and multi-source Dijkstra over Hanan grid graphs.
//!
//! Dijkstra over the grid is the "maze router" of the paper's OARMST
//! construction (Section 3.1): it finds the cheapest obstacle-avoiding
//! rectilinear path, counting via costs for layer changes.
//!
//! [`DijkstraWorkspace`] owns the per-vertex arrays and can be reused
//! across queries on same-sized graphs (the arrays are invalidated by an
//! epoch counter rather than cleared); the plain free functions are
//! one-shot conveniences and the `_in` variants thread a caller-owned
//! workspace through for allocation-free repeated queries.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_telemetry::{Counter, CounterSet};

use crate::error::GraphError;
use crate::path::GridPath;

/// Sentinel for "no predecessor".
const NO_PREV: u32 = u32::MAX;

/// Heap entry ordered by smallest cost first.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    cost: f64,
    idx: u32,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the cheapest first.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An optional rectangular search bound in grid indices (inclusive), used by
/// the bounded-exploration baseline router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBounds {
    /// Minimum horizontal index.
    pub h_lo: usize,
    /// Maximum horizontal index (inclusive).
    pub h_hi: usize,
    /// Minimum vertical index.
    pub v_lo: usize,
    /// Maximum vertical index (inclusive).
    pub v_hi: usize,
}

impl SearchBounds {
    /// The bounding box of a set of points, expanded by `margin` grid steps
    /// on each side and clipped to the graph.
    pub fn around<I: IntoIterator<Item = GridPoint>>(
        graph: &HananGraph,
        points: I,
        margin: usize,
    ) -> SearchBounds {
        let mut h_lo = usize::MAX;
        let mut h_hi = 0usize;
        let mut v_lo = usize::MAX;
        let mut v_hi = 0usize;
        for p in points {
            h_lo = h_lo.min(p.h);
            h_hi = h_hi.max(p.h);
            v_lo = v_lo.min(p.v);
            v_hi = v_hi.max(p.v);
        }
        if h_lo == usize::MAX {
            // Empty input: the whole grid.
            return SearchBounds {
                h_lo: 0,
                h_hi: graph.h() - 1,
                v_lo: 0,
                v_hi: graph.v() - 1,
            };
        }
        SearchBounds {
            h_lo: h_lo.saturating_sub(margin),
            h_hi: (h_hi + margin).min(graph.h() - 1),
            v_lo: v_lo.saturating_sub(margin),
            v_hi: (v_hi + margin).min(graph.v() - 1),
        }
    }

    /// Whether a point lies inside the bound (all layers are inside).
    #[inline]
    pub fn contains(&self, p: GridPoint) -> bool {
        self.h_lo <= p.h && p.h <= self.h_hi && self.v_lo <= p.v && p.v <= self.v_hi
    }
}

/// Reusable Dijkstra work arrays (distance, predecessor, visit stamps).
///
/// Reuse a single `DijkstraWorkspace` across the many maze-routing queries
/// of an OARMST construction to avoid repeated allocation. The workspace
/// automatically grows when given a larger graph, and old query state is
/// invalidated by bumping a generation counter (`epoch`) instead of an
/// `O(n)` clear.
#[derive(Debug, Clone, Default)]
pub struct DijkstraWorkspace {
    dist: Vec<f64>,
    prev: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Entry>,
    /// Tier A telemetry: settled pops, relaxation attempts, heap pushes
    /// ([`Counter::DijkstraPops`] and friends). Monotone across queries;
    /// owners read deltas (see `oarsmt-telemetry`).
    pub counters: CounterSet,
}

/// The pre-refactor name of [`DijkstraWorkspace`], kept as an alias so
/// existing call sites keep compiling.
pub type SearchSpace = DijkstraWorkspace;

impl DijkstraWorkspace {
    /// Creates an empty workspace; arrays grow on first use.
    pub fn new() -> Self {
        DijkstraWorkspace::default()
    }

    fn prepare(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.prev.resize(n, NO_PREV);
            self.stamp.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrapped: reset all stamps once.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.heap.clear();
    }

    #[inline]
    fn fresh(&self, idx: usize) -> bool {
        self.stamp[idx] != self.epoch
    }

    /// Multi-source, multi-target shortest path: from the cheapest of
    /// `sources` (each with an initial cost of zero) to the first settled
    /// vertex for which `is_target` returns `true`.
    ///
    /// `bounds`, when given, restricts expansion to a rectangular grid
    /// window (targets outside the window are unreachable).
    ///
    /// # Errors
    ///
    /// * [`GraphError::EmptyTerminalSet`] if `sources` is empty.
    /// * [`GraphError::BlockedSource`] if every source is blocked.
    /// * [`GraphError::Unreachable`] if no target can be reached.
    pub fn shortest_path_to_set<F>(
        &mut self,
        graph: &HananGraph,
        sources: &[GridPoint],
        is_target: F,
        bounds: Option<SearchBounds>,
    ) -> Result<GridPath, GraphError>
    where
        F: Fn(usize) -> bool,
    {
        let mut points = Vec::new();
        let cost =
            self.shortest_path_to_set_into(graph, sources, is_target, bounds, &mut points)?;
        Ok(GridPath { points, cost })
    }

    /// [`DijkstraWorkspace::shortest_path_to_set`] writing the path into a
    /// caller-owned buffer (cleared first) instead of allocating a
    /// [`GridPath`]; returns the path cost. This is the allocation-free
    /// entry point of the maze-routing hot loop.
    ///
    /// # Errors
    ///
    /// See [`DijkstraWorkspace::shortest_path_to_set`]. On error `out` is
    /// left cleared.
    pub fn shortest_path_to_set_into<F>(
        &mut self,
        graph: &HananGraph,
        sources: &[GridPoint],
        is_target: F,
        bounds: Option<SearchBounds>,
        out: &mut Vec<GridPoint>,
    ) -> Result<f64, GraphError>
    where
        F: Fn(usize) -> bool,
    {
        out.clear();
        if sources.is_empty() {
            return Err(GraphError::EmptyTerminalSet);
        }
        self.prepare(graph.len());
        let mut any_source = false;
        for &s in sources {
            if graph.is_blocked(s) {
                continue;
            }
            let idx = graph.index(s);
            if self.fresh(idx) || self.dist[idx] > 0.0 {
                self.stamp[idx] = self.epoch;
                self.dist[idx] = 0.0;
                self.prev[idx] = NO_PREV;
                self.counters.bump(Counter::DijkstraPushes);
                self.heap.push(Entry {
                    cost: 0.0,
                    idx: idx as u32,
                });
                any_source = true;
            }
        }
        if !any_source {
            return Err(GraphError::BlockedSource(sources[0]));
        }

        while let Some(Entry { cost, idx }) = self.heap.pop() {
            let idx = idx as usize;
            if cost > self.dist[idx] {
                continue; // stale heap entry
            }
            self.counters.bump(Counter::DijkstraPops);
            if is_target(idx) {
                return Ok(self.reconstruct_into(graph, idx, out));
            }
            let p = graph.point(idx);
            for (q, w) in graph.neighbors(p) {
                if let Some(b) = bounds {
                    if !b.contains(q) {
                        continue;
                    }
                }
                let qi = graph.index(q);
                let nd = cost + w;
                self.counters.bump(Counter::DijkstraRelaxations);
                if self.fresh(qi) || nd < self.dist[qi] {
                    self.stamp[qi] = self.epoch;
                    self.dist[qi] = nd;
                    self.prev[qi] = idx as u32;
                    self.counters.bump(Counter::DijkstraPushes);
                    self.heap.push(Entry {
                        cost: nd,
                        idx: qi as u32,
                    });
                }
            }
        }
        Err(GraphError::Unreachable {
            from: sources[0],
            to: None,
        })
    }

    /// [`DijkstraWorkspace::shortest_path_to_set`] driven by a prebuilt
    /// [`GridAdjacency`](crate::csr::GridAdjacency) instead of the
    /// point-based [`HananGraph::neighbors`] iterator.
    ///
    /// The CSR lists neighbors in exactly the iterator's order with the
    /// same `f64` edge costs, so the heap sees an identical push/pop
    /// sequence and the result is bit-identical to the unbounded
    /// point-based search — only the per-relaxation grid arithmetic and
    /// obstacle lookups are gone. There is no `bounds` parameter: bounded
    /// callers keep the point-based method.
    ///
    /// `adj` must be built for `graph` (see
    /// [`GridAdjacency::ensure`](crate::csr::GridAdjacency::ensure)).
    ///
    /// # Errors
    ///
    /// See [`DijkstraWorkspace::shortest_path_to_set`].
    ///
    /// # Panics
    ///
    /// Panics (on index out of range) if `adj` was built for a smaller
    /// graph.
    pub fn shortest_path_to_set_csr<F>(
        &mut self,
        graph: &HananGraph,
        adj: &crate::csr::GridAdjacency,
        sources: &[GridPoint],
        is_target: F,
    ) -> Result<GridPath, GraphError>
    where
        F: Fn(usize) -> bool,
    {
        let mut points = Vec::new();
        let cost =
            self.shortest_path_to_set_csr_into(graph, adj, sources, is_target, &mut points)?;
        Ok(GridPath { points, cost })
    }

    /// [`DijkstraWorkspace::shortest_path_to_set_csr`] writing the path
    /// into a caller-owned buffer (cleared first) instead of allocating a
    /// [`GridPath`]; returns the path cost.
    ///
    /// # Errors
    ///
    /// See [`DijkstraWorkspace::shortest_path_to_set`]. On error `out` is
    /// left cleared.
    ///
    /// # Panics
    ///
    /// Panics (on index out of range) if `adj` was built for a smaller
    /// graph.
    pub fn shortest_path_to_set_csr_into<F>(
        &mut self,
        graph: &HananGraph,
        adj: &crate::csr::GridAdjacency,
        sources: &[GridPoint],
        is_target: F,
        out: &mut Vec<GridPoint>,
    ) -> Result<f64, GraphError>
    where
        F: Fn(usize) -> bool,
    {
        out.clear();
        if sources.is_empty() {
            return Err(GraphError::EmptyTerminalSet);
        }
        self.prepare(graph.len());
        let mut any_source = false;
        for &s in sources {
            if graph.is_blocked(s) {
                continue;
            }
            let idx = graph.index(s);
            if self.fresh(idx) || self.dist[idx] > 0.0 {
                self.stamp[idx] = self.epoch;
                self.dist[idx] = 0.0;
                self.prev[idx] = NO_PREV;
                self.counters.bump(Counter::DijkstraPushes);
                self.heap.push(Entry {
                    cost: 0.0,
                    idx: idx as u32,
                });
                any_source = true;
            }
        }
        if !any_source {
            return Err(GraphError::BlockedSource(sources[0]));
        }

        while let Some(Entry { cost, idx }) = self.heap.pop() {
            let idx = idx as usize;
            if cost > self.dist[idx] {
                continue; // stale heap entry
            }
            self.counters.bump(Counter::DijkstraPops);
            if is_target(idx) {
                return Ok(self.reconstruct_into(graph, idx, out));
            }
            for (qi, w) in adj.neighbors(idx) {
                let qi = qi as usize;
                let nd = cost + w;
                self.counters.bump(Counter::DijkstraRelaxations);
                if self.fresh(qi) || nd < self.dist[qi] {
                    self.stamp[qi] = self.epoch;
                    self.dist[qi] = nd;
                    self.prev[qi] = idx as u32;
                    self.counters.bump(Counter::DijkstraPushes);
                    self.heap.push(Entry {
                        cost: nd,
                        idx: qi as u32,
                    });
                }
            }
        }
        Err(GraphError::Unreachable {
            from: sources[0],
            to: None,
        })
    }

    /// Full single-source Dijkstra; returns the distance to every vertex
    /// (`f64::INFINITY` where unreachable).
    ///
    /// # Errors
    ///
    /// [`GraphError::BlockedSource`] if the source vertex is blocked.
    pub fn distances_from(
        &mut self,
        graph: &HananGraph,
        source: GridPoint,
    ) -> Result<Vec<f64>, GraphError> {
        if graph.is_blocked(source) {
            return Err(GraphError::BlockedSource(source));
        }
        self.prepare(graph.len());
        let s = graph.index(source);
        self.stamp[s] = self.epoch;
        self.dist[s] = 0.0;
        self.prev[s] = NO_PREV;
        self.counters.bump(Counter::DijkstraPushes);
        self.heap.push(Entry {
            cost: 0.0,
            idx: s as u32,
        });
        while let Some(Entry { cost, idx }) = self.heap.pop() {
            let idx = idx as usize;
            if cost > self.dist[idx] {
                continue;
            }
            self.counters.bump(Counter::DijkstraPops);
            let p = graph.point(idx);
            for (q, w) in graph.neighbors(p) {
                let qi = graph.index(q);
                let nd = cost + w;
                self.counters.bump(Counter::DijkstraRelaxations);
                if self.fresh(qi) || nd < self.dist[qi] {
                    self.stamp[qi] = self.epoch;
                    self.dist[qi] = nd;
                    self.prev[qi] = idx as u32;
                    self.counters.bump(Counter::DijkstraPushes);
                    self.heap.push(Entry {
                        cost: nd,
                        idx: qi as u32,
                    });
                }
            }
        }
        Ok((0..graph.len())
            .map(|i| {
                if self.stamp[i] == self.epoch {
                    self.dist[i]
                } else {
                    f64::INFINITY
                }
            })
            .collect())
    }

    fn reconstruct_into(&self, graph: &HananGraph, target: usize, out: &mut Vec<GridPoint>) -> f64 {
        out.clear();
        let mut cur = target;
        loop {
            out.push(graph.point(cur));
            let prev = self.prev[cur];
            if prev == NO_PREV {
                break;
            }
            cur = prev as usize;
        }
        out.reverse();
        self.dist[target]
    }
}

/// One-shot shortest path between two vertices.
///
/// # Errors
///
/// See [`DijkstraWorkspace::shortest_path_to_set`].
pub fn shortest_path(
    graph: &HananGraph,
    from: GridPoint,
    to: GridPoint,
) -> Result<GridPath, GraphError> {
    shortest_path_in(&mut DijkstraWorkspace::new(), graph, from, to)
}

/// Shortest path between two vertices using a caller-owned workspace.
///
/// # Errors
///
/// See [`DijkstraWorkspace::shortest_path_to_set`].
pub fn shortest_path_in(
    ws: &mut DijkstraWorkspace,
    graph: &HananGraph,
    from: GridPoint,
    to: GridPoint,
) -> Result<GridPath, GraphError> {
    let target_idx = graph.index(to);
    ws.shortest_path_to_set(graph, &[from], |i| i == target_idx, None)
        .map_err(|e| match e {
            GraphError::Unreachable { from, .. } => GraphError::Unreachable { from, to: Some(to) },
            other => other,
        })
}

/// One-shot multi-source shortest path to a target set.
///
/// # Errors
///
/// See [`DijkstraWorkspace::shortest_path_to_set`].
pub fn shortest_path_to_set<F>(
    graph: &HananGraph,
    sources: &[GridPoint],
    is_target: F,
) -> Result<GridPath, GraphError>
where
    F: Fn(usize) -> bool,
{
    DijkstraWorkspace::new().shortest_path_to_set(graph, sources, is_target, None)
}

/// Multi-source shortest path to a target set using a caller-owned
/// workspace (equivalent to
/// [`DijkstraWorkspace::shortest_path_to_set`] without bounds; provided for
/// symmetry with the other `_in` entry points).
///
/// # Errors
///
/// See [`DijkstraWorkspace::shortest_path_to_set`].
pub fn shortest_path_to_set_in<F>(
    ws: &mut DijkstraWorkspace,
    graph: &HananGraph,
    sources: &[GridPoint],
    is_target: F,
) -> Result<GridPath, GraphError>
where
    F: Fn(usize) -> bool,
{
    ws.shortest_path_to_set(graph, sources, is_target, None)
}

/// One-shot full single-source distances.
///
/// # Errors
///
/// See [`DijkstraWorkspace::distances_from`].
pub fn distances_from(graph: &HananGraph, source: GridPoint) -> Result<Vec<f64>, GraphError> {
    DijkstraWorkspace::new().distances_from(graph, source)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_grid(h: usize, v: usize, m: usize) -> HananGraph {
        HananGraph::uniform(h, v, m, 1.0, 1.0, 3.0)
    }

    #[test]
    fn straight_line_cost_is_manhattan() {
        let g = open_grid(5, 5, 1);
        let p = shortest_path(&g, GridPoint::new(0, 0, 0), GridPoint::new(4, 3, 0)).unwrap();
        assert_eq!(p.cost, 7.0);
        assert_eq!(p.source(), GridPoint::new(0, 0, 0));
        assert_eq!(p.target(), GridPoint::new(4, 3, 0));
        // Consecutive points are neighbors.
        for (a, b) in p.edges() {
            assert_eq!(a.grid_distance(b), 1);
        }
    }

    #[test]
    fn path_cost_equals_sum_of_edge_costs() {
        let g = HananGraph::with_costs(4, 3, 2, vec![2.0, 5.0, 1.0], vec![4.0, 4.0], 3.0).unwrap();
        let p = shortest_path(&g, GridPoint::new(0, 0, 0), GridPoint::new(3, 2, 1)).unwrap();
        let sum: f64 = p
            .edges()
            .map(|(a, b)| g.edge_cost(a, b).expect("path edges are grid edges"))
            .sum();
        assert!((p.cost - sum).abs() < 1e-9);
    }

    #[test]
    fn routes_around_obstacle_wall() {
        // A vertical wall with a single gap forces a detour.
        let mut g = open_grid(5, 5, 1);
        for v in 0..4 {
            g.add_obstacle_vertex(GridPoint::new(2, v, 0)).unwrap();
        }
        let p = shortest_path(&g, GridPoint::new(0, 0, 0), GridPoint::new(4, 0, 0)).unwrap();
        // Must go up to row 4, across, and back down: 4 + 4 + 4 + ... check
        // exact: up 4, right 4, down 4 = 12.
        assert_eq!(p.cost, 12.0);
        assert!(p.points.iter().all(|&q| !g.is_blocked(q)));
    }

    #[test]
    fn uses_other_layer_when_cheaper() {
        // Fully blocked layer 0 except endpoints: path must via up and back.
        let mut g = open_grid(3, 1, 2);
        g.add_obstacle_vertex(GridPoint::new(1, 0, 0)).unwrap();
        let p = shortest_path(&g, GridPoint::new(0, 0, 0), GridPoint::new(2, 0, 0)).unwrap();
        // via(3) + 2 horizontal + via(3) = 8.
        assert_eq!(p.cost, 8.0);
    }

    #[test]
    fn unreachable_target_is_an_error() {
        let mut g = open_grid(3, 3, 1);
        // Wall off the right column completely.
        for v in 0..3 {
            g.add_obstacle_vertex(GridPoint::new(1, v, 0)).unwrap();
        }
        let err = shortest_path(&g, GridPoint::new(0, 0, 0), GridPoint::new(2, 2, 0)).unwrap_err();
        assert!(matches!(err, GraphError::Unreachable { .. }));
    }

    #[test]
    fn blocked_source_is_an_error() {
        let mut g = open_grid(3, 3, 1);
        g.add_obstacle_vertex(GridPoint::new(0, 0, 0)).unwrap();
        let err = shortest_path(&g, GridPoint::new(0, 0, 0), GridPoint::new(2, 2, 0)).unwrap_err();
        assert_eq!(err, GraphError::BlockedSource(GridPoint::new(0, 0, 0)));
    }

    #[test]
    fn empty_sources_is_an_error() {
        let g = open_grid(3, 3, 1);
        let err = shortest_path_to_set(&g, &[], |_| true).unwrap_err();
        assert_eq!(err, GraphError::EmptyTerminalSet);
    }

    #[test]
    fn multi_source_picks_nearest_source() {
        let g = open_grid(10, 1, 1);
        let sources = [GridPoint::new(0, 0, 0), GridPoint::new(8, 0, 0)];
        let target = g.index(GridPoint::new(6, 0, 0));
        let p = shortest_path_to_set(&g, &sources, |i| i == target).unwrap();
        assert_eq!(p.cost, 2.0);
        assert_eq!(p.source(), GridPoint::new(8, 0, 0));
    }

    #[test]
    fn source_in_target_set_gives_trivial_path() {
        let g = open_grid(3, 3, 1);
        let s = GridPoint::new(1, 1, 0);
        let si = g.index(s);
        let p = shortest_path_to_set(&g, &[s], |i| i == si).unwrap();
        assert_eq!(p.cost, 0.0);
        assert_eq!(p.points, vec![s]);
    }

    #[test]
    fn distances_match_individual_paths() {
        let mut g = open_grid(6, 6, 2);
        g.add_obstacle_vertex(GridPoint::new(2, 2, 0)).unwrap();
        g.add_obstacle_vertex(GridPoint::new(3, 2, 0)).unwrap();
        let src = GridPoint::new(0, 0, 0);
        let dist = distances_from(&g, src).unwrap();
        for idx in (0..g.len()).step_by(7) {
            let p = g.point(idx);
            if g.is_blocked(p) {
                assert!(dist[idx].is_infinite());
                continue;
            }
            let path = shortest_path(&g, src, p).unwrap();
            assert!(
                (dist[idx] - path.cost).abs() < 1e-9,
                "distance mismatch at {p}"
            );
        }
    }

    #[test]
    fn bounded_search_cannot_leave_window() {
        let g = open_grid(10, 10, 1);
        let bounds = SearchBounds {
            h_lo: 0,
            h_hi: 4,
            v_lo: 0,
            v_hi: 4,
        };
        let target = g.index(GridPoint::new(9, 9, 0));
        let err = SearchSpace::new()
            .shortest_path_to_set(
                &g,
                &[GridPoint::new(0, 0, 0)],
                |i| i == target,
                Some(bounds),
            )
            .unwrap_err();
        assert!(matches!(err, GraphError::Unreachable { .. }));
    }

    #[test]
    fn bounds_around_clips_to_graph() {
        let g = open_grid(6, 6, 1);
        let b = SearchBounds::around(&g, [GridPoint::new(1, 1, 0), GridPoint::new(4, 2, 0)], 3);
        assert_eq!((b.h_lo, b.h_hi, b.v_lo, b.v_hi), (0, 5, 0, 5));
        assert!(b.contains(GridPoint::new(0, 0, 0)));
    }

    #[test]
    fn csr_search_is_bit_identical_to_point_based_search() {
        let mut g = open_grid(9, 7, 2);
        for &(h, v, m) in &[(2, 0, 0), (2, 1, 0), (2, 2, 0), (5, 4, 1), (6, 4, 1)] {
            g.add_obstacle_vertex(GridPoint::new(h, v, m)).unwrap();
        }
        let mut adj = crate::csr::GridAdjacency::new();
        adj.ensure(&g);
        let mut ws = DijkstraWorkspace::new();
        let sources = [GridPoint::new(0, 0, 0), GridPoint::new(8, 6, 1)];
        // Exercise several targets, interleaving the two methods on the
        // same workspace so epoch reuse is covered too.
        for target in [(4, 3, 0), (2, 6, 1), (7, 0, 0)] {
            let t = g.index(GridPoint::new(target.0, target.1, target.2));
            let a = ws
                .shortest_path_to_set(&g, &sources, |i| i == t, None)
                .unwrap();
            let b = ws
                .shortest_path_to_set_csr(&g, &adj, &sources, |i| i == t)
                .unwrap();
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            assert_eq!(a.points, b.points);
        }
    }

    #[test]
    fn counters_track_pops_relaxations_and_pushes() {
        let g = open_grid(6, 6, 1);
        let mut ws = DijkstraWorkspace::new();
        let t = g.index(GridPoint::new(5, 5, 0));
        ws.shortest_path_to_set(&g, &[GridPoint::new(0, 0, 0)], |i| i == t, None)
            .unwrap();
        let after = ws.counters;
        assert!(after.get(Counter::DijkstraPops) > 0);
        assert!(after.get(Counter::DijkstraRelaxations) >= after.get(Counter::DijkstraPops));
        assert!(after.get(Counter::DijkstraPushes) > 0);
        // A second identical query adds an identical delta.
        ws.shortest_path_to_set(&g, &[GridPoint::new(0, 0, 0)], |i| i == t, None)
            .unwrap();
        let d = ws.counters.delta_since(&after);
        assert_eq!(
            d.get(Counter::DijkstraPops),
            after.get(Counter::DijkstraPops)
        );
    }

    #[test]
    fn search_space_reuse_is_consistent() {
        let g = open_grid(8, 8, 2);
        let mut space = SearchSpace::new();
        let t1 = g.index(GridPoint::new(7, 7, 1));
        let t2 = g.index(GridPoint::new(3, 0, 0));
        let a = space
            .shortest_path_to_set(&g, &[GridPoint::new(0, 0, 0)], |i| i == t1, None)
            .unwrap();
        let b = space
            .shortest_path_to_set(&g, &[GridPoint::new(0, 0, 0)], |i| i == t2, None)
            .unwrap();
        // 7 + 7 + via(3) and 3.
        assert_eq!(a.cost, 17.0);
        assert_eq!(b.cost, 3.0);
        // And again the first query, identically.
        let a2 = space
            .shortest_path_to_set(&g, &[GridPoint::new(0, 0, 0)], |i| i == t1, None)
            .unwrap();
        assert_eq!(a2.cost, a.cost);
    }
}
