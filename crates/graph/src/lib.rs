//! Graph-search substrate over 3D Hanan grid graphs.
//!
//! This crate hosts the search primitives every router in the reproduction
//! is built from:
//!
//! * [`dijkstra`] — single- and multi-source Dijkstra over a
//!   [`HananGraph`](oarsmt_geom::HananGraph), the "maze router" of the
//!   paper's OARMST construction (Section 3.1, following \[14\]). Each
//!   query picks a [`QueuePolicy`]: the retained binary-heap oracle, the
//!   [`bucket`]-queue (Dial) fast path — bit-identical to the heap on the
//!   paper's bounded-integer cost models — or an A\* lower-bound search
//!   ([`RectilinearBound`]), the one documented divergence (DESIGN.md
//!   §12),
//! * [`bucket`] — the circular bucket ring behind the Dial policy,
//! * [`csr`] — flattened CSR adjacency for the relaxation inner loop,
//! * [`stamp`] — `O(1)`-reset stamped index sets,
//! * [`mst`] — Prim's algorithm over dense terminal-distance matrices,
//! * [`union_find`] — disjoint sets, used for tree validation,
//! * [`path`] — grid paths with costs.
//!
//! # Example
//!
//! ```
//! use oarsmt_geom::{HananGraph, GridPoint};
//! use oarsmt_graph::dijkstra::shortest_path;
//!
//! let g = HananGraph::uniform(4, 4, 1, 1.0, 1.0, 3.0);
//! let path = shortest_path(&g, GridPoint::new(0, 0, 0), GridPoint::new(3, 3, 0))
//!     .expect("open grid is connected");
//! assert_eq!(path.cost, 6.0);
//! ```

#![forbid(unsafe_code)]

pub mod bucket;
pub mod csr;
pub mod dijkstra;
pub mod error;
pub mod mst;
pub mod path;
pub mod stamp;
pub mod union_find;

pub use bucket::BucketQueue;
pub use csr::GridAdjacency;
pub use dijkstra::{
    distances_from, shortest_path, shortest_path_in, shortest_path_to_set, shortest_path_to_set_in,
    DijkstraWorkspace, QueuePolicy, RectilinearBound, SearchSpace, DIAL_MAX_EDGE_COST,
};
pub use error::GraphError;
pub use mst::{prim_mst, MstEdge};
pub use path::GridPath;
pub use stamp::{StampMap, StampSet};
pub use union_find::UnionFind;
