//! Compressed sparse-row adjacency for Hanan grid graphs.
//!
//! [`HananGraph::neighbors`] recomputes grid-point arithmetic and obstacle
//! lookups for every neighbor of every settled vertex — the innermost loop
//! of the maze router. [`GridAdjacency`] flattens that iteration once per
//! layout into index-based CSR arrays so repeated Dijkstra queries (an
//! OARMST construction runs one per Prim iteration, per prune round, per
//! polish reroute) pay only an array walk per relaxation.
//!
//! Neighbor order within each vertex is exactly the order
//! [`HananGraph::neighbors`] yields (+h, −h, +v, −v, +m, −m, skipping
//! blocked or out-of-bounds vertices), and edge costs are the same `f64`
//! values, so a Dijkstra driven by the CSR pushes the same heap entries in
//! the same order as the point-based iteration: results are bit-identical.

use oarsmt_geom::{HananGraph, VertexKind};

/// Flattened neighbor lists of a [`HananGraph`], plus the graph fingerprint
/// they were built from so a cached instance can revalidate itself cheaply.
///
/// The fingerprint covers everything the adjacency depends on — dimensions,
/// per-gap costs, via cost, and the full vertex-kind vector (obstacles
/// change connectivity) — so [`GridAdjacency::ensure`] is safe to call with
/// *any* graph, not just the one the cache was last built for.
///
/// # Example
///
/// ```
/// use oarsmt_geom::{GridPoint, HananGraph};
/// use oarsmt_graph::GridAdjacency;
///
/// let g = HananGraph::uniform(3, 3, 1, 1.0, 2.0, 3.0);
/// let mut adj = GridAdjacency::new();
/// adj.ensure(&g); // builds once
/// adj.ensure(&g); // no-op: fingerprint matches
/// let center = g.index(GridPoint::new(1, 1, 0));
/// let from_graph: Vec<(usize, f64)> = g
///     .neighbors(GridPoint::new(1, 1, 0))
///     .map(|(p, c)| (g.index(p), c))
///     .collect();
/// let from_csr: Vec<(usize, f64)> = adj
///     .neighbors(center)
///     .map(|(i, c)| (i as usize, c))
///     .collect();
/// assert_eq!(from_graph, from_csr);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GridAdjacency {
    /// CSR row offsets, length `n + 1`.
    offsets: Vec<u32>,
    /// Neighbor vertex indices, concatenated per vertex.
    nbr: Vec<u32>,
    /// Edge cost to the neighbor at the same position in `nbr`.
    cost: Vec<f64>,
    // Fingerprint of the graph the arrays were built from.
    dims: (usize, usize, usize),
    via_cost: f64,
    x_costs: Vec<f64>,
    y_costs: Vec<f64>,
    kinds: Vec<VertexKind>,
}

impl GridAdjacency {
    /// Creates an empty adjacency; [`GridAdjacency::ensure`] builds it on
    /// first use.
    pub fn new() -> Self {
        GridAdjacency::default()
    }

    /// Whether the cached arrays were built from a graph indistinguishable
    /// from `graph` (same dimensions, costs, and vertex kinds).
    pub fn matches(&self, graph: &HananGraph) -> bool {
        self.dims == graph.dims()
            && self.via_cost.to_bits() == graph.via_cost().to_bits()
            && self.x_costs == graph.x_costs()
            && self.y_costs == graph.y_costs()
            && self.kinds.len() == graph.len()
            && (0..graph.len()).all(|i| self.kinds[i] == graph.kind_at(i))
    }

    /// Rebuilds the arrays from `graph` unless the fingerprint already
    /// matches. The comparison is `O(n)` and the rebuild `O(n)`; both are
    /// negligible next to a single maze query, so hot paths call this
    /// unconditionally.
    pub fn ensure(&mut self, graph: &HananGraph) {
        if self.matches(graph) {
            return;
        }
        let n = graph.len();
        self.offsets.clear();
        self.offsets.reserve(n + 1);
        self.nbr.clear();
        self.cost.clear();
        self.offsets.push(0);
        for idx in 0..n {
            let p = graph.point(idx);
            for (q, w) in graph.neighbors(p) {
                self.nbr.push(graph.index(q) as u32);
                self.cost.push(w);
            }
            self.offsets.push(self.nbr.len() as u32);
        }
        self.dims = graph.dims();
        self.via_cost = graph.via_cost();
        self.x_costs.clear();
        self.x_costs.extend_from_slice(graph.x_costs());
        self.y_costs.clear();
        self.y_costs.extend_from_slice(graph.y_costs());
        self.kinds.clear();
        self.kinds.extend((0..n).map(|i| graph.kind_at(i)));
    }

    /// Whether the adjacency has been built at all.
    pub fn is_built(&self) -> bool {
        !self.offsets.is_empty()
    }

    /// Number of vertices the adjacency was built for (0 if unbuilt).
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Whether the adjacency is unbuilt or built for an empty graph.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unblocked neighbors of vertex `idx` with their edge costs, in
    /// [`HananGraph::neighbors`] order.
    ///
    /// # Panics
    ///
    /// Panics if the adjacency is unbuilt or `idx` is out of range.
    #[inline]
    pub fn neighbors(&self, idx: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.offsets[idx] as usize;
        let hi = self.offsets[idx + 1] as usize;
        self.nbr[lo..hi]
            .iter()
            .copied()
            .zip(self.cost[lo..hi].iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oarsmt_geom::GridPoint;

    fn obstructed_grid() -> HananGraph {
        let mut g =
            HananGraph::with_costs(4, 3, 2, vec![1.0, 2.5, 1.0], vec![2.0, 1.0], 3.0).unwrap();
        g.add_obstacle_vertex(GridPoint::new(1, 1, 0)).unwrap();
        g.add_obstacle_vertex(GridPoint::new(2, 0, 1)).unwrap();
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g
    }

    #[test]
    fn csr_matches_neighbors_iterator_everywhere() {
        let g = obstructed_grid();
        let mut adj = GridAdjacency::new();
        adj.ensure(&g);
        assert_eq!(adj.len(), g.len());
        for idx in 0..g.len() {
            let expect: Vec<(u32, u64)> = g
                .neighbors(g.point(idx))
                .map(|(q, w)| (g.index(q) as u32, w.to_bits()))
                .collect();
            let got: Vec<(u32, u64)> = adj.neighbors(idx).map(|(i, w)| (i, w.to_bits())).collect();
            assert_eq!(expect, got, "vertex {idx}");
        }
    }

    #[test]
    fn ensure_rebuilds_when_obstacles_change() {
        let mut g = HananGraph::uniform(3, 3, 1, 1.0, 1.0, 3.0);
        let mut adj = GridAdjacency::new();
        adj.ensure(&g);
        let center = g.index(GridPoint::new(1, 1, 0));
        assert_eq!(adj.neighbors(center).count(), 4);
        g.add_obstacle_vertex(GridPoint::new(2, 1, 0)).unwrap();
        assert!(!adj.matches(&g));
        adj.ensure(&g);
        assert_eq!(adj.neighbors(center).count(), 3);
    }

    #[test]
    fn ensure_is_a_noop_on_matching_graph() {
        let g = obstructed_grid();
        let mut adj = GridAdjacency::new();
        adj.ensure(&g);
        let before = (adj.offsets.clone(), adj.nbr.clone());
        adj.ensure(&g);
        assert_eq!(before, (adj.offsets.clone(), adj.nbr.clone()));
        assert!(adj.matches(&g));
    }

    #[test]
    fn unbuilt_adjacency_reports_empty() {
        let adj = GridAdjacency::new();
        assert!(!adj.is_built());
        assert!(adj.is_empty());
        assert_eq!(adj.len(), 0);
    }
}
