//! Disjoint-set (union–find) structure with path compression and union by
//! size, used to validate routing trees and to build spanning trees.

/// A disjoint-set forest over `0..len` elements.
///
/// ```
/// use oarsmt_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(uf.union(2, 3));
/// assert!(!uf.union(1, 0)); // already joined
/// assert_eq!(uf.components(), 2);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(0, 2));
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        UnionFind {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
            components: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint components.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Representative of the set containing `x`, with path compression.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x as u32;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Compress.
        let mut cur = x as u32;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root as usize
    }

    /// Joins the sets containing `a` and `b`; returns `true` if they were
    /// previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_their_own_roots() {
        let mut uf = UnionFind::new(5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
        assert_eq!(uf.components(), 5);
    }

    #[test]
    fn union_reduces_components_exactly_once() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.components(), 4);
    }

    #[test]
    fn chains_compress_and_stay_connected() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.components(), 1);
        assert!(uf.connected(0, 99));
        // After compression every element points near the root.
        let root = uf.find(0);
        for i in 0..100 {
            assert_eq!(uf.find(i), root);
        }
    }

    #[test]
    fn detects_cycles_in_edge_lists() {
        // A tree has exactly |V|-1 successful unions; an extra edge fails.
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0)];
        let mut uf = UnionFind::new(4);
        let merged: usize = edges.iter().map(|&(a, b)| uf.union(a, b) as usize).sum();
        assert_eq!(merged, 3, "the fourth edge closes a cycle");
    }
}
