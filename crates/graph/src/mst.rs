//! Prim's algorithm over dense terminal-distance matrices.
//!
//! Routers use this to build minimum spanning trees over a small set of
//! terminals (pins plus Steiner candidates) whose pairwise obstacle-avoiding
//! distances were computed by maze routing.

use serde::{Deserialize, Serialize};

use crate::error::GraphError;

/// An edge of a terminal-level minimum spanning tree, naming terminals by
/// their indices in the caller's terminal list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MstEdge {
    /// First terminal index.
    pub a: usize,
    /// Second terminal index.
    pub b: usize,
    /// Edge weight (obstacle-avoiding routing distance).
    pub weight: f64,
}

/// Builds a minimum spanning tree over `n` terminals from a dense `n × n`
/// distance matrix (row-major, `dist[i * n + j]`), using Prim's algorithm.
///
/// Entries may be `f64::INFINITY` for unreachable pairs.
///
/// # Errors
///
/// * [`GraphError::EmptyTerminalSet`] if `n == 0`.
/// * [`GraphError::Unreachable`] if the terminals are not all mutually
///   reachable (the matrix is disconnected).
///
/// # Panics
///
/// Panics if `dist.len() != n * n`.
///
/// # Example
///
/// ```
/// use oarsmt_graph::mst::prim_mst;
///
/// // Three terminals on a line at positions 0, 1, 5.
/// let d = vec![
///     0.0, 1.0, 5.0,
///     1.0, 0.0, 4.0,
///     5.0, 4.0, 0.0,
/// ];
/// let mst = prim_mst(&d, 3)?;
/// let total: f64 = mst.iter().map(|e| e.weight).sum();
/// assert_eq!(total, 5.0);
/// # Ok::<(), oarsmt_graph::GraphError>(())
/// ```
pub fn prim_mst(dist: &[f64], n: usize) -> Result<Vec<MstEdge>, GraphError> {
    assert_eq!(dist.len(), n * n, "distance matrix must be n x n");
    if n == 0 {
        return Err(GraphError::EmptyTerminalSet);
    }
    if n == 1 {
        return Ok(Vec::new());
    }
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    let mut best_from = vec![0usize; n];
    in_tree[0] = true;
    best[1..n].copy_from_slice(&dist[1..n]); // row 0 of the matrix
    let mut edges = Vec::with_capacity(n - 1);
    for _ in 1..n {
        let mut pick = None;
        let mut pick_cost = f64::INFINITY;
        for j in 0..n {
            if !in_tree[j] && best[j] < pick_cost {
                pick = Some(j);
                pick_cost = best[j];
            }
        }
        let Some(j) = pick else {
            return Err(GraphError::Unreachable {
                from: oarsmt_geom::GridPoint::new(0, 0, 0),
                to: None,
            });
        };
        in_tree[j] = true;
        edges.push(MstEdge {
            a: best_from[j],
            b: j,
            weight: pick_cost,
        });
        for k in 0..n {
            let w = dist[j * n + k];
            if !in_tree[k] && w < best[k] {
                best[k] = w;
                best_from[k] = j;
            }
        }
    }
    Ok(edges)
}

/// Total weight of an MST edge list.
pub fn mst_cost(edges: &[MstEdge]) -> f64 {
    edges.iter().map(|e| e.weight).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::union_find::UnionFind;

    fn matrix(points: &[(f64, f64)]) -> Vec<f64> {
        let n = points.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] =
                    (points[i].0 - points[j].0).abs() + (points[i].1 - points[j].1).abs();
            }
        }
        d
    }

    #[test]
    fn mst_of_square_picks_three_sides() {
        let d = matrix(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        let mst = prim_mst(&d, 4).unwrap();
        assert_eq!(mst.len(), 3);
        assert_eq!(mst_cost(&mst), 3.0);
    }

    #[test]
    fn mst_is_a_spanning_tree() {
        let pts: Vec<(f64, f64)> = (0..10)
            .map(|i| ((i * 7 % 10) as f64, (i * 3 % 10) as f64))
            .collect();
        let d = matrix(&pts);
        let mst = prim_mst(&d, 10).unwrap();
        assert_eq!(mst.len(), 9);
        let mut uf = UnionFind::new(10);
        for e in &mst {
            assert!(uf.union(e.a, e.b), "mst edge must not close a cycle");
        }
        assert_eq!(uf.components(), 1);
    }

    #[test]
    fn single_terminal_has_empty_mst() {
        assert_eq!(prim_mst(&[0.0], 1).unwrap(), Vec::new());
    }

    #[test]
    fn zero_terminals_is_an_error() {
        assert!(matches!(
            prim_mst(&[], 0),
            Err(GraphError::EmptyTerminalSet)
        ));
    }

    #[test]
    fn disconnected_matrix_is_an_error() {
        let inf = f64::INFINITY;
        let d = vec![0.0, inf, inf, 0.0];
        assert!(matches!(
            prim_mst(&d, 2),
            Err(GraphError::Unreachable { .. })
        ));
    }

    #[test]
    fn mst_weight_is_optimal_for_line() {
        // Points on a line: MST must chain consecutive points.
        let pts: Vec<(f64, f64)> = vec![(0.0, 0.0), (10.0, 0.0), (3.0, 0.0), (7.0, 0.0)];
        let d = matrix(&pts);
        let mst = prim_mst(&d, 4).unwrap();
        assert_eq!(mst_cost(&mst), 10.0);
    }
}
