//! Epoch-stamped index sets: `O(1)`-reset membership sets over dense
//! vertex-index ranges.
//!
//! The maze-routing hot path ([`crate::dijkstra::DijkstraWorkspace`]) and
//! the OARMST construction repeatedly need "a fresh set over `0..n`". A
//! [`StampSet`] provides that without per-query allocation or an `O(n)`
//! clear: each slot stores the generation (epoch) in which it was last
//! inserted, and membership means "stamped with the *current* epoch".
//! Starting a new generation is a single counter increment; the backing
//! array is only touched when the graph grows or the 32-bit epoch wraps.

/// A reusable set of `usize` indices in `0..n` with `O(1)` reset.
///
/// ```
/// use oarsmt_graph::StampSet;
///
/// let mut s = StampSet::new();
/// s.begin(10);
/// assert!(s.insert(3));
/// assert!(!s.insert(3), "already present");
/// assert!(s.contains(3));
/// s.begin(10); // new generation: empty again, no clearing pass
/// assert!(!s.contains(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StampSet {
    stamp: Vec<u32>,
    epoch: u32,
    len: usize,
}

impl StampSet {
    /// Creates an empty set; the backing array grows on first use.
    pub fn new() -> Self {
        StampSet::default()
    }

    /// Starts a new generation covering indices `0..n`: the set becomes
    /// empty without clearing the backing array.
    pub fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: old stamps could collide with the new epoch, so pay
            // the one-off O(n) reset (once per ~4 billion generations).
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.len = 0;
    }

    /// Inserts `idx`; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the range given to [`StampSet::begin`].
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        if self.stamp[idx] == self.epoch {
            false
        } else {
            self.stamp[idx] = self.epoch;
            self.len += 1;
            true
        }
    }

    /// Removes `idx`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, idx: usize) -> bool {
        if self.stamp[idx] == self.epoch {
            // Epoch 0 is never current (`begin` skips it), so 0 always
            // reads as absent.
            self.stamp[idx] = 0;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Whether `idx` is in the current generation.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        self.stamp.get(idx).is_some_and(|&s| s == self.epoch)
    }

    /// Number of indices in the current generation.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the current generation is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A reusable `usize -> u32` map over a dense index range with `O(1)`
/// reset, the map counterpart of [`StampSet`].
///
/// Unset keys read as `0`, which makes it a natural epoch-reset counter
/// array (e.g. per-vertex degrees of the current tree in the OARMST
/// redundant-candidate prune):
///
/// ```
/// use oarsmt_graph::StampMap;
///
/// let mut m = StampMap::new();
/// m.begin(10);
/// assert_eq!(m.get(4), 0);
/// m.add(4, 2);
/// m.set(7, 5);
/// assert_eq!((m.get(4), m.get(7)), (2, 5));
/// m.begin(10); // new generation: all zeros again, no clearing pass
/// assert_eq!(m.get(4), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StampMap {
    stamp: Vec<u32>,
    val: Vec<u32>,
    epoch: u32,
}

impl StampMap {
    /// Creates an empty map; the backing arrays grow on first use.
    pub fn new() -> Self {
        StampMap::default()
    }

    /// Starts a new generation covering indices `0..n`: every key reads
    /// as `0` again without clearing the backing arrays.
    pub fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.val.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: old stamps could collide with the new epoch, so pay
            // the one-off O(n) reset (once per ~4 billion generations).
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// The value at `idx` in the current generation (`0` if unset).
    #[inline]
    pub fn get(&self, idx: usize) -> u32 {
        if self.stamp.get(idx).is_some_and(|&s| s == self.epoch) {
            self.val[idx]
        } else {
            0
        }
    }

    /// Sets the value at `idx` in the current generation.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the range given to [`StampMap::begin`].
    #[inline]
    pub fn set(&mut self, idx: usize, v: u32) {
        self.stamp[idx] = self.epoch;
        self.val[idx] = v;
    }

    /// Adds `dv` to the value at `idx` and returns the new value.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the range given to [`StampMap::begin`].
    #[inline]
    pub fn add(&mut self, idx: usize, dv: u32) -> u32 {
        let cur = if self.stamp[idx] == self.epoch {
            self.val[idx]
        } else {
            0
        };
        let next = cur + dv;
        self.stamp[idx] = self.epoch;
        self.val[idx] = next;
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_len() {
        let mut s = StampSet::new();
        s.begin(8);
        assert!(s.is_empty());
        assert!(s.insert(1));
        assert!(s.insert(7));
        assert!(!s.insert(1));
        assert_eq!(s.len(), 2);
        assert!(s.contains(1));
        assert!(!s.contains(2));
        assert!(s.remove(1));
        assert!(!s.remove(1));
        assert_eq!(s.len(), 1);
        assert!(!s.contains(1));
    }

    #[test]
    fn begin_resets_without_clearing() {
        let mut s = StampSet::new();
        s.begin(4);
        s.insert(0);
        s.insert(3);
        s.begin(4);
        assert!(s.is_empty());
        for i in 0..4 {
            assert!(!s.contains(i), "index {i} leaked across generations");
        }
    }

    #[test]
    fn grows_with_begin() {
        let mut s = StampSet::new();
        s.begin(2);
        s.insert(1);
        s.begin(10);
        assert!(s.insert(9));
        assert!(!s.contains(1));
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let mut s = StampSet::new();
        s.begin(3);
        assert!(!s.contains(100));
    }

    #[test]
    fn epoch_wrap_resets_cleanly() {
        let mut s = StampSet::new();
        s.begin(2);
        s.insert(0);
        // Force the wrap path.
        s.epoch = u32::MAX;
        s.begin(2);
        assert!(s.is_empty());
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(s.contains(0));
    }

    #[test]
    fn map_get_set_add_and_generation_reset() {
        let mut m = StampMap::new();
        m.begin(5);
        assert_eq!(m.get(0), 0);
        assert_eq!(m.add(0, 1), 1);
        assert_eq!(m.add(0, 3), 4);
        m.set(2, 9);
        assert_eq!((m.get(0), m.get(2), m.get(4)), (4, 9, 0));
        m.begin(5);
        for i in 0..5 {
            assert_eq!(m.get(i), 0, "value {i} leaked across generations");
        }
        assert_eq!(m.add(4, 7), 7);
    }

    #[test]
    fn map_grows_with_begin_and_wraps_epoch() {
        let mut m = StampMap::new();
        m.begin(2);
        m.set(1, 3);
        m.begin(6);
        assert_eq!(m.get(1), 0);
        m.set(5, 2);
        assert_eq!(m.get(5), 2);
        m.epoch = u32::MAX;
        m.begin(6);
        assert_eq!(m.get(5), 0);
        assert_eq!(m.add(5, 1), 1);
    }

    #[test]
    fn map_out_of_range_get_is_zero() {
        let mut m = StampMap::new();
        m.begin(3);
        assert_eq!(m.get(100), 0);
    }
}
