//! Property-based tests for the graph-search substrate.

use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_graph::dijkstra::{distances_from, shortest_path, SearchSpace};
use oarsmt_graph::mst::{mst_cost, prim_mst};
use oarsmt_graph::UnionFind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_case(seed: u64) -> HananGraph {
    CaseGenerator::new(GeneratorConfig::paper_costs(7, 6, 2, (3, 5)), seed).generate()
}

fn random_free_point(graph: &HananGraph, rng: &mut StdRng) -> GridPoint {
    loop {
        let p = GridPoint::new(
            rng.gen_range(0..graph.h()),
            rng.gen_range(0..graph.v()),
            rng.gen_range(0..graph.m()),
        );
        if !graph.is_blocked(p) {
            return p;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dijkstra_distances_satisfy_triangle_inequality(seed in 0u64..800) {
        let g = random_case(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 99);
        let a = random_free_point(&g, &mut rng);
        let b = random_free_point(&g, &mut rng);
        let c = random_free_point(&g, &mut rng);
        let da = distances_from(&g, a).unwrap();
        let db = distances_from(&g, b).unwrap();
        let ab = da[g.index(b)];
        let bc = db[g.index(c)];
        let ac = da[g.index(c)];
        if ab.is_finite() && bc.is_finite() {
            prop_assert!(ac <= ab + bc + 1e-9);
        }
    }

    #[test]
    fn shortest_paths_are_symmetric(seed in 0u64..800) {
        let g = random_case(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 7);
        let a = random_free_point(&g, &mut rng);
        let b = random_free_point(&g, &mut rng);
        match (shortest_path(&g, a, b), shortest_path(&g, b, a)) {
            (Ok(p1), Ok(p2)) => prop_assert!((p1.cost - p2.cost).abs() < 1e-9),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "reachability must be symmetric"),
        }
    }

    #[test]
    fn path_edges_are_grid_neighbors_with_matching_costs(seed in 0u64..800) {
        let g = random_case(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 13);
        let a = random_free_point(&g, &mut rng);
        let b = random_free_point(&g, &mut rng);
        if let Ok(path) = shortest_path(&g, a, b) {
            let mut sum = 0.0;
            for (u, v) in path.edges() {
                let w = g.edge_cost(u, v);
                prop_assert!(w.is_some(), "consecutive points must be neighbors");
                sum += w.unwrap();
            }
            prop_assert!((sum - path.cost).abs() < 1e-9);
        }
    }

    #[test]
    fn reused_search_space_matches_fresh_searches(seed in 0u64..400) {
        let g = random_case(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 21);
        let mut space = SearchSpace::new();
        for _ in 0..4 {
            let a = random_free_point(&g, &mut rng);
            let b = random_free_point(&g, &mut rng);
            let target = g.index(b);
            let reused = space.shortest_path_to_set(&g, &[a], |i| i == target, None);
            let fresh = shortest_path(&g, a, b);
            match (reused, fresh) {
                (Ok(p1), Ok(p2)) => prop_assert!((p1.cost - p2.cost).abs() < 1e-9),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "reuse must not change reachability"),
            }
        }
    }

    #[test]
    fn mst_cost_is_minimal_among_random_spanning_trees(seed in 0u64..300) {
        // Build a random metric, compare Prim against random spanning trees.
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(3..7usize);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect();
        let mut dist = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                dist[i * n + j] =
                    (pts[i].0 - pts[j].0).abs() + (pts[i].1 - pts[j].1).abs();
            }
        }
        let mst = prim_mst(&dist, n).unwrap();
        let best = mst_cost(&mst);
        // Random spanning trees via random edge insertion + union-find.
        for _ in 0..10 {
            let mut uf = UnionFind::new(n);
            let mut cost = 0.0;
            let mut edges = 0;
            while edges < n - 1 {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a != b && uf.union(a, b) {
                    cost += dist[a * n + b];
                    edges += 1;
                }
            }
            prop_assert!(best <= cost + 1e-9, "prim {best} vs random {cost}");
        }
    }
}
