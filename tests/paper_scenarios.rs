//! Scenario tests tied to specific claims of the paper.

use oarsmt::eval::st_to_mst_ratio;
use oarsmt::rl_router::RlRouter;
use oarsmt::selector::{MedianHeuristicSelector, NeuralSelector, Selector, UniformSelector};
use oarsmt_geom::benchmarks::BenchmarkSpec;
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig, TestSubsetSpec};
use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_mcts::alphago::sequential_select;
use oarsmt_mcts::{CombinatorialMcts, MctsConfig};
use oarsmt_nn::unet::UNetConfig;
use oarsmt_router::OarmstRouter;

/// Section 2.1: "a layout with n pins needs at most n−2 irredundant Steiner
/// points" — the router must never propose more.
#[test]
fn steiner_budget_never_exceeds_n_minus_2() {
    let mut gen = CaseGenerator::new(GeneratorConfig::tiny(8, 8, 2, (3, 8)), 11);
    let mut router = RlRouter::new(MedianHeuristicSelector::new());
    for g in gen.generate_many(10) {
        let Ok(out) = router.route(&g) else { continue };
        assert!(out.steiner_points.len() <= g.pins().len().saturating_sub(2));
    }
}

/// Section 3.1: "determining all selected Steiner points only requires one
/// inference of the neural network" — versus `n − 2` for sequential agents.
#[test]
fn one_shot_vs_sequential_inference_counts() {
    struct Counting<S> {
        inner: S,
        calls: usize,
    }
    impl<S: Selector> Selector for Counting<S> {
        fn fsp(&mut self, g: &HananGraph, e: &[GridPoint]) -> Vec<f32> {
            self.calls += 1;
            self.inner.fsp(g, e)
        }
    }
    let mut g = HananGraph::uniform(8, 8, 1, 1.0, 1.0, 3.0);
    for (h, v) in [(0, 0), (7, 0), (0, 7), (7, 7), (3, 3), (5, 2)] {
        g.add_pin(GridPoint::new(h, v, 0)).unwrap();
    }
    // One-shot router: exactly one inference.
    let mut counting = Counting {
        inner: MedianHeuristicSelector::new(),
        calls: 0,
    };
    let mut router = RlRouter::new(&mut counting);
    router.route(&g).unwrap();
    assert_eq!(counting.calls, 1, "the paper's router infers once");
    // Sequential baseline: n - 2 inferences.
    let mut counting = Counting {
        inner: MedianHeuristicSelector::new(),
        calls: 0,
    };
    let pts = sequential_select(&g, &mut counting);
    assert_eq!(pts.len(), 4);
    assert_eq!(counting.calls, 4, "sequential agents infer n-2 times");
}

/// Section 3.3: the agent is image-in-image-out for any (H, V, M) — the
/// same weights route layouts of many sizes.
#[test]
fn one_network_many_sizes() {
    let mut selector = NeuralSelector::with_config(UNetConfig {
        in_channels: 7,
        base_channels: 2,
        levels: 2,
        seed: 5,
    });
    for (h, v, m) in [(4, 7, 1), (12, 12, 4), (9, 3, 2), (16, 5, 3)] {
        let g = HananGraph::uniform(h, v, m, 1.0, 1.0, 3.0);
        let fsp = selector.fsp(&g, &[]);
        assert_eq!(fsp.len(), h * v * m);
        assert!(fsp.iter().all(|p| (0.0..=1.0).contains(p)));
    }
}

/// Section 3.4: combinatorial MCTS explores unique combinations — the
/// executed Steiner set is strictly increasing in selection priority.
#[test]
fn combinatorial_search_emits_priority_ordered_combinations() {
    let mut gen = CaseGenerator::new(GeneratorConfig::tiny(7, 7, 1, (4, 6)), 21);
    let mcts = CombinatorialMcts::new(MctsConfig::tiny());
    let mut sel = UniformSelector::new(0.1);
    for g in gen.generate_many(6) {
        let Ok(out) = mcts.search(&g, &mut sel) else {
            continue;
        };
        for w in out.executed.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}

/// Fig. 2's promise: the final ML-OARSMT connects all pins; combined with
/// the ST-to-MST metric of Figs. 11–12 it never exceeds ~1.0 for a
/// safeguarded router.
#[test]
fn safeguarded_st_to_mst_is_at_most_one() {
    let mut gen = CaseGenerator::new(GeneratorConfig::tiny(8, 8, 2, (4, 6)), 33);
    let mut router = RlRouter::new(UniformSelector::new(0.2));
    for g in gen.generate_many(8) {
        let Ok(out) = router.route(&g) else { continue };
        let ratio = st_to_mst_ratio(&g, &out.tree).unwrap();
        assert!(ratio <= 1.0 + 1e-9, "safeguard caps the ratio at 1.0");
    }
}

/// Table 1 / Table 4 workloads must be constructible and routable.
#[test]
fn all_declared_workloads_are_routable() {
    // Benchmarks of Table 4.
    let oarmst = OarmstRouter::new();
    for spec in BenchmarkSpec::all() {
        let g = spec.build();
        oarmst
            .route(&g, &[])
            .unwrap_or_else(|e| panic!("{} must route: {e}", spec.name));
    }
    // Layouts from each Table 1 rung: dense random obstacles occasionally
    // wall a pin off (the harness skips those), so require that most of a
    // small sample routes.
    for spec in TestSubsetSpec::ladder() {
        let mut gen = spec.generator(1);
        let mut ok = 0;
        for g in gen.generate_many(5) {
            if let Ok(t) = oarmst.route(&g, &[]) {
                assert!(t.spans_in(&g, g.pins()));
                ok += 1;
            }
        }
        assert!(ok >= 3, "{}: only {ok}/5 layouts routed", spec.name);
    }
}
