//! Integration tests for the adoption features beyond the paper's scope:
//! exact optimum, geometry export, multi-net routing, text-format I/O.

use oarsmt::multi_net::{MultiNetRouter, Net};
use oarsmt::selector::MedianHeuristicSelector;
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_geom::io::{parse_case, write_case};
use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_router::exact::steiner_exact_cost;
use oarsmt_router::segments::{render_layer, RouteGeometry};
use oarsmt_router::{Lin18Router, OarmstRouter};

#[test]
fn text_format_round_trips_generated_cases() {
    let mut gen = CaseGenerator::new(GeneratorConfig::paper_costs(9, 7, 3, (3, 6)), 60);
    for g in gen.generate_many(5) {
        let text = write_case(&g);
        let back = parse_case(&text).expect("own output parses");
        assert_eq!(g, back);
        // And the parsed case routes identically.
        if let Ok(t1) = OarmstRouter::new().route(&g, &[]) {
            let t2 = OarmstRouter::new().route(&back, &[]).unwrap();
            assert_eq!(t1.cost(), t2.cost());
        }
    }
}

#[test]
fn geometry_export_covers_the_tree() {
    let mut gen = CaseGenerator::new(GeneratorConfig::tiny(8, 8, 2, (4, 6)), 61);
    for g in gen.generate_many(5) {
        let Ok(tree) = OarmstRouter::new().route(&g, &[]) else {
            continue;
        };
        let geo = RouteGeometry::extract(&g, &tree);
        // Every via in the tree appears in the export.
        assert_eq!(geo.vias.len(), tree.via_count(&g));
        // Unit-cost grids: wirelength equals planar cost.
        let planar_cost: f64 = tree.cost() - geo.vias.len() as f64 * g.via_cost();
        assert!(geo.wirelength() as f64 <= planar_cost + 1e-9 + planar_cost);
        // Rendering produces one text block per layer.
        for layer in 0..g.m() {
            let art = render_layer(&g, &tree, layer);
            assert_eq!(art.lines().count(), 2 * g.v() - 1);
        }
    }
}

#[test]
fn exact_optimum_lower_bounds_every_router() {
    let mut gen = CaseGenerator::new(GeneratorConfig::paper_costs(7, 7, 2, (4, 6)), 62);
    let mut compared = 0;
    for g in gen.generate_many(8) {
        let Ok(optimum) = steiner_exact_cost(&g) else {
            continue;
        };
        let plain = OarmstRouter::new().route(&g, &[]).unwrap().cost();
        let lin = Lin18Router::new().route(&g).unwrap().cost();
        let mut rl = oarsmt::RlRouter::new(MedianHeuristicSelector::new());
        let ours = rl.route(&g).unwrap().tree.cost();
        for (name, cost) in [("plain", plain), ("lin18", lin), ("ours", ours)] {
            assert!(
                cost >= optimum - 1e-6,
                "{name} ({cost}) below optimum ({optimum})"
            );
        }
        compared += 1;
    }
    assert!(compared >= 5);
}

#[test]
fn multi_net_trees_remain_disjoint_on_random_layouts() {
    let template = HananGraph::uniform(12, 12, 3, 1.0, 1.0, 3.0);
    let nets = vec![
        Net::new(
            "n0",
            vec![GridPoint::new(0, 0, 0), GridPoint::new(11, 0, 0)],
        ),
        Net::new(
            "n1",
            vec![
                GridPoint::new(0, 11, 0),
                GridPoint::new(11, 11, 0),
                GridPoint::new(5, 6, 1),
            ],
        ),
        Net::new(
            "n2",
            vec![GridPoint::new(5, 0, 2), GridPoint::new(5, 11, 2)],
        ),
    ];
    let mut router = MultiNetRouter::new(MedianHeuristicSelector::new());
    let out = router.route_nets(&template, &nets).unwrap();
    assert_eq!(out.failed, 0);
    let trees: Vec<_> = out.nets.iter().filter_map(|n| n.tree.as_ref()).collect();
    for i in 0..trees.len() {
        for j in (i + 1)..trees.len() {
            assert!(
                trees[i].vertices().is_disjoint(&trees[j].vertices()),
                "nets {i} and {j} overlap"
            );
        }
    }
}

#[test]
fn cli_text_format_supports_hand_written_cases() {
    let text = "\
# hand-written case
hanan 5 5 2
via 4
pin 0 0 0
pin 4 4 1
pin 0 4 0
obstacle 2 2 0
obstacle 2 2 1
";
    let g = parse_case(text).expect("hand-written case parses");
    assert_eq!(g.dims(), (5, 5, 2));
    let tree = OarmstRouter::new().route(&g, &[]).unwrap();
    assert!(tree.spans_in(&g, g.pins()));
    for &(a, b) in tree.edges() {
        assert!(!g.is_blocked(g.point(a as usize)));
        assert!(!g.is_blocked(g.point(b as usize)));
    }
}
