//! The hard requirement of the parallel engine: `--threads 1` and
//! `--threads N` must produce **bit-identical** results — per-layout costs
//! and win/loss tallies in evaluation, and dense MCTS labels in sample
//! generation. Each job derives its seed from its index and results are
//! folded in index order, so the worker partition can never leak into the
//! output.

use oarsmt::parallel::{derive_seed, run_seeded, run_seeded_with};
use oarsmt::rl_router::RlRouter;
use oarsmt::selector::NeuralSelector;
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_mcts::{CombinatorialMcts, MctsConfig};
use oarsmt_nn::unet::UNetConfig;
use oarsmt_router::{Lin18Router, RouteContext};
use oarsmt_telemetry::{Counter, CounterSet};

fn small_selector(seed: u64) -> NeuralSelector {
    NeuralSelector::with_config(UNetConfig {
        in_channels: 7,
        base_channels: 2,
        levels: 1,
        seed,
    })
}

fn layout(seed: u64) -> oarsmt_geom::HananGraph {
    CaseGenerator::new(GeneratorConfig::tiny(6, 6, 2, (3, 5)), seed).generate()
}

/// Table-2-style evaluation: baseline cost, our cost and the win tally per
/// layout, for a given worker count.
fn evaluate(threads: usize) -> (Vec<(u64, u64)>, usize) {
    const LAYOUTS: usize = 10;
    const SEED: u64 = 0xDAC2024;
    let selector = small_selector(5);
    let lin18 = Lin18Router::new();
    let rows = run_seeded_with(
        LAYOUTS,
        SEED,
        threads,
        || RlRouter::new(selector.clone()),
        |router, _i, seed| {
            let graph = layout(seed);
            let base = lin18.route(&graph).ok()?;
            let ours = router.route(&graph).ok()?;
            Some((base.cost().to_bits(), ours.tree.cost().to_bits()))
        },
    );
    let costs: Vec<(u64, u64)> = rows.into_iter().flatten().collect();
    let wins = costs
        .iter()
        .filter(|&&(b, o)| f64::from_bits(o) < f64::from_bits(b))
        .count();
    (costs, wins)
}

#[test]
fn table2_style_eval_is_bit_identical_across_thread_counts() {
    let (costs_1, wins_1) = evaluate(1);
    assert!(!costs_1.is_empty(), "fixed workload must route");
    for threads in [2, 4] {
        let (costs_n, wins_n) = evaluate(threads);
        assert_eq!(
            costs_1, costs_n,
            "per-layout costs differ at {threads} threads"
        );
        assert_eq!(wins_1, wins_n);
    }
}

#[test]
fn mcts_labels_are_bit_identical_across_thread_counts() {
    let generate = |threads: usize| -> Vec<Vec<u32>> {
        let selector = small_selector(7);
        let config = MctsConfig {
            base_iterations: 8,
            base_size: 25,
            ..MctsConfig::default()
        };
        run_seeded_with(
            6,
            99,
            threads,
            || selector.clone(),
            |sel, _i, seed| {
                let graph = layout(seed);
                let mcts = CombinatorialMcts::new(config.clone());
                match mcts.search(&graph, sel) {
                    Ok(out) => out.label.iter().map(|p| p.to_bits()).collect(),
                    Err(_) => Vec::new(),
                }
            },
        )
    };
    let one = generate(1);
    let four = generate(4);
    assert_eq!(one, four, "MCTS labels depend on the worker partition");
    assert!(
        one.iter().any(|l| !l.is_empty()),
        "some searches must succeed"
    );
}

/// Runs the golden searches of the label test above with per-job counter
/// deltas (the same capture/fold pattern the sample-generation engine
/// uses) and returns the folded totals plus the number of trace events the
/// workers recorded. `trace_cap > 0` arms the flight recorder on every
/// worker context before the searches run.
fn search_counters_traced(threads: usize, trace_cap: usize) -> (CounterSet, u64) {
    let config = MctsConfig {
        base_iterations: 8,
        base_size: 25,
        ..MctsConfig::default()
    };
    let deltas = run_seeded_with(
        6,
        99,
        threads,
        || {
            let mut ctx = RouteContext::new();
            if trace_cap > 0 {
                ctx.trace.enable(trace_cap);
            }
            (ctx, small_selector(7))
        },
        |state, _i, seed| {
            let (ctx, sel) = state;
            let graph = layout(seed);
            let mcts = CombinatorialMcts::new(config.clone());
            let before = ctx.counters_total();
            let _ = mcts.search_in(ctx, &graph, sel);
            let events = ctx.trace.len() as u64 + ctx.trace.dropped();
            (ctx.counters_total().delta_since(&before), events)
        },
    );
    let mut total = CounterSet::new();
    let mut events = 0;
    for (delta, n) in &deltas {
        total.merge_from(delta);
        events = events.max(*n);
    }
    (total, events)
}

fn search_counters(threads: usize) -> CounterSet {
    search_counters_traced(threads, 0).0
}

#[test]
fn search_counter_totals_are_bit_identical_across_thread_counts() {
    let mut one = search_counters(1);
    let mut four = search_counters(4);
    // Pure work counters must agree with no caveats at all.
    for c in [
        Counter::DijkstraPops,
        Counter::DijkstraRelaxations,
        Counter::MctsExpansions,
        Counter::MctsRollouts,
    ] {
        assert_eq!(one.get(c), four.get(c), "{c:?} depends on thread count");
    }
    // Pool hit/miss *splits* legitimately differ (each worker warms its own
    // context), but their sums are pure functions of the work.
    one.fold_pool_splits();
    four.fold_pool_splits();
    assert_eq!(one, four, "counter totals depend on the worker partition");
    assert!(!one.is_zero(), "golden searches must count real work");
}

/// The flight recorder is a pure observer: arming it on every worker
/// context changes no deterministic counter, and the folded totals stay
/// bit-identical between `--threads 1` and `--threads 4` with tracing on.
#[test]
fn counter_totals_survive_an_active_trace_recorder() {
    let (mut plain, no_events) = search_counters_traced(1, 0);
    let (mut traced_1, events_1) = search_counters_traced(1, 4096);
    let (mut traced_4, events_4) = search_counters_traced(4, 4096);
    assert_eq!(no_events, 0, "a disabled recorder must record nothing");
    assert!(events_1 > 0, "an armed recorder must capture route spans");
    assert!(events_4 > 0, "an armed recorder must capture route spans");
    plain.fold_pool_splits();
    traced_1.fold_pool_splits();
    traced_4.fold_pool_splits();
    assert_eq!(plain, traced_1, "tracing perturbed the counters");
    assert_eq!(
        traced_1, traced_4,
        "traced counter totals depend on thread count"
    );
}

#[test]
fn derived_seeds_are_a_pure_function_of_master_and_index() {
    let direct: Vec<u64> = (0..16).map(|i| derive_seed(3, i)).collect();
    let pooled = run_seeded(16, 3, 4, |_i, seed| seed);
    assert_eq!(direct, pooled);
}
