//! End-to-end integration: physical layout → Hanan reduction → Steiner
//! selection → OARMST → validated ML-OARSMT, across all routers.

use oarsmt::rl_router::RlRouter;
use oarsmt::selector::{MedianHeuristicSelector, NeuralSelector};
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_geom::{Coord, GridPoint, HananGraph, Layout, Obstacle, Pin, Rect};
use oarsmt_nn::unet::UNetConfig;
use oarsmt_router::{Lin18Router, Liu14Router, OarmstRouter, RouteError, SpanningRouter};

fn tiny_selector(seed: u64) -> NeuralSelector {
    NeuralSelector::with_config(UNetConfig {
        in_channels: 7,
        base_channels: 2,
        levels: 1,
        seed,
    })
}

#[test]
fn physical_layout_routes_end_to_end() {
    let layout = Layout::new(3)
        .with_pin(Pin::new(Coord::new(0, 0), 0))
        .with_pin(Pin::new(Coord::new(100, 20), 1))
        .with_pin(Pin::new(Coord::new(40, 90), 2))
        .with_pin(Pin::new(Coord::new(90, 80), 0))
        .with_obstacle(Obstacle::new(Rect::new(30, 30, 70, 60), 0))
        .with_obstacle(Obstacle::new(Rect::new(30, 30, 70, 60), 1))
        .with_via_cost(4.0);
    let graph = HananGraph::from_layout(&layout).expect("layout reduces");

    let mut router = RlRouter::new(tiny_selector(1));
    let out = router.route(&graph).expect("routes");
    assert!(out.tree.is_tree());
    assert!(out.tree.spans_in(&graph, graph.pins()));
    // No tree edge touches an obstacle vertex.
    for &(a, b) in out.tree.edges() {
        assert!(!graph.is_blocked(graph.point(a as usize)));
        assert!(!graph.is_blocked(graph.point(b as usize)));
    }
}

#[test]
fn all_routers_agree_on_two_pin_shortest_path() {
    let mut g = HananGraph::uniform(7, 5, 2, 2.0, 3.0, 4.0);
    g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
    g.add_pin(GridPoint::new(6, 4, 1)).unwrap();
    let expected = 6.0 * 2.0 + 4.0 * 3.0 + 4.0; // straight route + one via

    let plain = OarmstRouter::new().route(&g, &[]).unwrap().cost();
    let lin = Lin18Router::new().route(&g).unwrap().cost();
    let liu = Liu14Router::new().route(&g).unwrap().cost();
    let span = SpanningRouter::new().route(&g).unwrap().cost();
    let mut rl = RlRouter::new(MedianHeuristicSelector::new());
    let ours = rl.route(&g).unwrap().tree.cost();

    for (name, cost) in [
        ("oarmst", plain),
        ("lin18", lin),
        ("liu14", liu),
        ("spanning", span),
        ("ours", ours),
    ] {
        assert_eq!(cost, expected, "{name} must find the shortest 2-pin route");
    }
}

#[test]
fn baseline_quality_ordering_holds_on_average() {
    // Table 4's ordering: spanning [12] worst, geometric reduction [16] in
    // between, [14] best among baselines. Verify over random layouts on
    // average (individual layouts may tie).
    let mut gen = CaseGenerator::new(GeneratorConfig::tiny(10, 10, 2, (5, 8)), 404);
    let (mut span_sum, mut liu_sum, mut lin_sum) = (0.0, 0.0, 0.0);
    let mut n = 0;
    for g in gen.generate_many(12) {
        let Ok(span) = SpanningRouter::new().route(&g) else {
            continue;
        };
        let liu = Liu14Router::new().route(&g).unwrap();
        let lin = Lin18Router::new().route(&g).unwrap();
        span_sum += span.cost();
        liu_sum += liu.cost();
        lin_sum += lin.cost();
        n += 1;
    }
    assert!(n >= 8, "most random layouts route");
    assert!(liu_sum <= span_sum + 1e-6, "[16] beats [12] on average");
    assert!(lin_sum <= liu_sum + 1e-6, "[14] beats [16] on average");
}

#[test]
fn rl_router_never_loses_to_plain_oarmst_with_safeguard() {
    let mut gen = CaseGenerator::new(GeneratorConfig::tiny(9, 9, 2, (4, 7)), 505);
    let oarmst = OarmstRouter::new();
    let mut router = RlRouter::new(tiny_selector(2));
    for g in gen.generate_many(10) {
        let Ok(plain) = oarmst.route(&g, &[]) else {
            continue;
        };
        let out = router.route(&g).unwrap();
        assert!(out.tree.cost() <= plain.cost() + 1e-9);
    }
}

#[test]
fn arbitrary_sizes_route_with_one_selector() {
    // The headline property: one network handles any (H, V, M).
    let mut router = RlRouter::new(tiny_selector(3));
    for (h, v, m) in [(4, 4, 1), (9, 5, 2), (6, 11, 3), (14, 3, 2)] {
        let mut gen = CaseGenerator::new(GeneratorConfig::tiny(h, v, m, (3, 5)), 7);
        let g = gen.generate();
        match router.route(&g) {
            Ok(out) => {
                assert!(out.tree.spans_in(&g, g.pins()), "{h}x{v}x{m}");
            }
            Err(oarsmt::CoreError::Route(RouteError::Disconnected { .. })) => {}
            Err(e) => panic!("{h}x{v}x{m}: {e}"),
        }
    }
}
