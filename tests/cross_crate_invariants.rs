//! Property-based integration tests across crates: Hanan reduction, tree
//! invariants, augmentation symmetries, actor policies, MCTS labels.

use oarsmt::selector::{Selector, UniformSelector};
use oarsmt::topk::select_top_k;
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_geom::{Coord, HananGraph, Layout, Obstacle, Pin, Rect, VertexKind};
use oarsmt_mcts::actor::action_policy;
use oarsmt_mcts::{CombinatorialMcts, MctsConfig};
use oarsmt_rl::augment::{transform_sample, Symmetry};
use oarsmt_rl::sample::TrainingSample;
use oarsmt_router::{OarmstRouter, RouteError};
use proptest::prelude::*;

fn arbitrary_layout() -> impl Strategy<Value = Layout> {
    (
        2usize..4,
        prop::collection::vec(((0i64..40), (0i64..40), 0usize..3), 2..6),
        prop::collection::vec(
            ((0i64..40), (0i64..40), (1i64..6), (1i64..6), 0usize..3),
            0..6,
        ),
    )
        .prop_filter_map(
            "pins must be distinct and off obstacles",
            |(layers, pins, obs)| {
                let mut layout = Layout::new(3);
                let _ = layers;
                for &(x, y, w, h, m) in &obs {
                    layout = layout.with_obstacle(Obstacle::new(Rect::new(x, y, x + w, y + h), m));
                }
                let mut seen = std::collections::HashSet::new();
                for &(x, y, m) in &pins {
                    if !seen.insert((x, y, m)) {
                        return None;
                    }
                    layout = layout.with_pin(Pin::new(Coord::new(x, y), m));
                }
                layout.validate().ok()?;
                Some(layout)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hanan_reduction_places_every_pin_on_a_cut(layout in arbitrary_layout()) {
        let graph = HananGraph::from_layout(&layout).unwrap();
        // Every pin's physical coordinate is one of the cut coordinates.
        prop_assert_eq!(graph.pins().len(), layout.pins().len());
        for (pin, gp) in layout.pins().iter().zip(graph.pins()) {
            prop_assert_eq!(graph.physical(*gp), pin.at);
        }
        // Hanan graph never exceeds the uniform grid over the bounding box.
        let (lo, hi) = layout.bounding_box().unwrap();
        let uniform = ((hi.x - lo.x + 1) * (hi.y - lo.y + 1)) as usize * layout.layers();
        prop_assert!(graph.len() <= uniform);
    }

    #[test]
    fn routed_trees_satisfy_all_invariants(layout in arbitrary_layout()) {
        let graph = HananGraph::from_layout(&layout).unwrap();
        match OarmstRouter::new().route(&graph, &[]) {
            Ok(tree) => {
                prop_assert!(tree.is_tree());
                prop_assert!(tree.spans_in(&graph, graph.pins()));
                prop_assert!(tree.cost() >= 0.0);
                for &(a, b) in tree.edges() {
                    prop_assert!(!graph.is_blocked(graph.point(a as usize)));
                    prop_assert!(!graph.is_blocked(graph.point(b as usize)));
                }
            }
            Err(RouteError::Disconnected { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    #[test]
    fn exact_tree_cost_is_invariant_under_symmetries(seed in 0u64..500) {
        use oarsmt_router::exact::steiner_exact_cost;
        let mut gen = CaseGenerator::new(GeneratorConfig::tiny(7, 5, 2, (3, 5)), seed);
        let graph = gen.generate();
        let Ok(exact) = steiner_exact_cost(&graph) else {
            return Ok(()); // unroutable layout
        };
        for sym in Symmetry::all() {
            let tg = sym.apply_graph(&graph);
            let texact = steiner_exact_cost(&tg).expect("symmetry preserves routability");
            // The optimum is a true invariant of the symmetry group.
            prop_assert!((texact - exact).abs() < 1e-6,
                "symmetry {:?}: {} vs {}", sym, texact, exact);
            // The heuristic may differ by tie-breaking but must stay near
            // the optimum in every orientation.
            let Ok(ht) = OarmstRouter::new().route(&tg, &[]) else {
                return Ok(());
            };
            prop_assert!(ht.cost() >= texact - 1e-6);
            prop_assert!(ht.cost() <= texact * 1.6 + 1e-6,
                "heuristic far from optimum under {:?}: {} vs {}", sym, ht.cost(), texact);
        }
    }

    #[test]
    fn actor_policy_is_a_distribution_over_valid_actions(seed in 0u64..500, p in 0.01f32..0.9) {
        let mut gen = CaseGenerator::new(GeneratorConfig::tiny(6, 6, 2, (3, 5)), seed);
        let graph = gen.generate();
        let fsp = UniformSelector::new(p).fsp(&graph, &[]);
        let policy = action_policy(&graph, &fsp, None);
        let total: f64 = policy.iter().map(|a| a.prob).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for a in &policy {
            prop_assert!(a.prob >= 0.0);
            prop_assert_eq!(graph.kind_at(a.vertex as usize), VertexKind::Empty);
        }
    }

    #[test]
    fn top_k_selection_returns_valid_sorted_points(seed in 0u64..500, k in 0usize..8) {
        let mut gen = CaseGenerator::new(GeneratorConfig::tiny(6, 6, 2, (3, 6)), seed);
        let graph = gen.generate();
        let fsp = UniformSelector::new(0.3).fsp(&graph, &[]);
        let sel = select_top_k(&graph, &fsp, k, &[]);
        prop_assert!(sel.len() <= k);
        for w in sel.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for p in &sel {
            prop_assert_eq!(graph.kind(*p), VertexKind::Empty);
        }
    }

    #[test]
    fn augmented_samples_preserve_label_multiset(seed in 0u64..200) {
        let mut gen = CaseGenerator::new(GeneratorConfig::tiny(5, 7, 2, (3, 4)), seed);
        let graph = gen.generate();
        let label: Vec<f32> = (0..graph.len()).map(|i| (i % 10) as f32 / 10.0).collect();
        let sample = TrainingSample::new(graph, vec![], label.clone());
        for sym in Symmetry::all() {
            let t = transform_sample(&sample, sym);
            let mut a = label.clone();
            let mut b = t.label.clone();
            a.sort_by(f32::total_cmp);
            b.sort_by(f32::total_cmp);
            prop_assert_eq!(a, b, "label multiset preserved under {:?}", sym);
        }
    }
}

#[test]
fn mcts_labels_bounded_and_zero_on_invalid_vertices() {
    let mut gen = CaseGenerator::new(GeneratorConfig::tiny(6, 6, 1, (4, 6)), 31);
    let mcts = CombinatorialMcts::new(MctsConfig::tiny());
    let mut sel = UniformSelector::new(0.1);
    let mut checked = 0;
    for graph in gen.generate_many(6) {
        let Ok(out) = mcts.search(&graph, &mut sel) else {
            continue;
        };
        for idx in 0..graph.len() {
            assert!((0.0..=1.0).contains(&out.label[idx]));
            if graph.kind_at(idx) != VertexKind::Empty {
                assert_eq!(out.label[idx], 0.0);
            }
        }
        checked += 1;
    }
    assert!(checked >= 4);
}
