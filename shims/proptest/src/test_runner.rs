//! Runner configuration, the failure type, and the deterministic generator
//! behind the shim (mirrors the named items of `proptest::test_runner`).

use std::fmt;

/// How many accepted cases each property runs (mirrors
/// `proptest::test_runner::Config`, exposed under the prelude name).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted inputs each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (mirrors
/// `proptest::test_runner::TestCaseError`, failure variant only — the shim
/// folds rejection into `Strategy::sample` returning `None`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail<S: Into<String>>(message: S) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Outcome of one property case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic generator driving strategy sampling (SplitMix64).
///
/// Each property derives its stream from the test's name, so a failure at
/// "case k" reproduces exactly on rerun without recording a seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from an explicit value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// A generator seeded from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h)
    }

    /// The next 64 random bits (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, span)` (`span == 0` yields 0).
    pub fn bounded(&mut self, span: u64) -> u64 {
        if span == 0 {
            return 0;
        }
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
