//! Collection strategies (mirrors `proptest::collection`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec`s with element strategy `S` and a length drawn from a
/// range (mirrors `proptest::collection::vec`).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Generates vectors whose length is drawn uniformly from `len` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.bounded(span) as usize;
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
