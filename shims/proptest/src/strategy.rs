//! Value-generation strategies (mirrors `proptest::strategy`).
//!
//! A [`Strategy`] draws one candidate value per call from a deterministic
//! [`TestRng`]; returning `None` rejects the whole candidate (used by
//! [`Strategy::prop_filter_map`] / [`Strategy::prop_filter`], and bounded
//! by the runner's rejection budget).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of test-case inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one candidate, or `None` to reject (retry with fresh
    /// randomness).
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values, rejecting those the closure maps to `None`
    /// (mirrors `Strategy::prop_filter_map`).
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            f,
            whence,
        }
    }

    /// Transforms generated values (mirrors `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing the predicate (mirrors
    /// `Strategy::prop_filter`).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// Strategy yielding a fixed value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone, Copy)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        let _ = self.whence;
        (self.f)(self.inner.sample(rng)?)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        Some((self.f)(self.inner.sample(rng)?))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone, Copy)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        let _ = self.whence;
        self.inner.sample(rng).filter(|v| (self.f)(v))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                Some((self.start as i128 + rng.bounded(span) as i128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return Some(rng.next_u64() as $t);
                }
                Some((start as i128 + rng.bounded(span as u64) as i128) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                Some(self.start + (self.end - self.start) * rng.unit() as $t)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.sample(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Boxed strategies and references sample through to the inner strategy.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).sample(rng)
    }
}
