//! Offline mini property-testing harness mirroring the subset of the
//! `proptest` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors shims for its external dependencies (see `shims/` in the
//! repository root). This crate implements the pieces the test suites
//! name — the [`proptest!`] macro, range/tuple/[`collection::vec`]
//! strategies, [`Strategy::prop_filter_map`] and friends, and the
//! [`prop_assert!`]/[`prop_assert_eq!`] macros — on top of a small
//! deterministic generator. Differences from upstream:
//!
//! * **No shrinking.** A failing case reports its case index and the
//!   per-test deterministic seed instead of a minimized input.
//! * **Deterministic by default.** Each `#[test]` derives its generator
//!   seed from the test name, so failures reproduce exactly on rerun.
//! * **Rejection is bounded.** `prop_filter_map` rejections abort the test
//!   after `cases * 1024` consecutive misses rather than tracking a global
//!   rejection budget.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(32))]
//!     // (`#[test]` goes here in a test module; omitted so the doctest
//!     // can call the property directly.)
//!     fn addition_commutes(a in 0i64..1000, b in 0i64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! # addition_commutes();
//! ```

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;
pub use test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! Mirrors the `prop` module re-export of the upstream prelude.
        pub use crate::collection;
    }
}

/// Drives one property: samples `config.cases` accepted inputs from
/// `strategy` and runs `body` on each, panicking (with reproduction info)
/// on the first failed case. Called by the [`proptest!`] expansion; not
/// part of the public upstream API.
pub fn run_property<S, F>(name: &str, config: ProptestConfig, strategy: S, mut body: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> TestCaseResult,
{
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0u32;
    let mut rejected: u64 = 0;
    let reject_budget = u64::from(config.cases) * 1024;
    while accepted < config.cases {
        match strategy.sample(&mut rng) {
            None => {
                rejected += 1;
                assert!(
                    rejected <= reject_budget,
                    "property '{name}': strategy rejected {rejected} candidates \
                     for {accepted} accepted cases — filter is too strict"
                );
            }
            Some(value) => {
                if let Err(e) = body(value) {
                    panic!(
                        "property '{name}' failed at case {accepted} \
                         (deterministic seed: test name): {e}"
                    );
                }
                accepted += 1;
            }
        }
    }
}

/// Declares property tests (mirrors `proptest::proptest!`).
///
/// Each `#[test] fn name(pat in strategy, ...) { body }` item expands to a
/// zero-argument `#[test]` that samples the strategies `cases` times and
/// runs the body, which may use [`prop_assert!`]-style macros and
/// `return Ok(())` for early exit.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property(
                    stringify!($name),
                    $config,
                    ($($strategy,)+),
                    |($($arg,)+)| -> $crate::test_runner::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a property body, failing the case (not the
/// whole process) on violation (mirrors `proptest::prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body (mirrors
/// `proptest::prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property body (mirrors
/// `proptest::prop_assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_are_honoured(a in 3usize..9, b in -4i64..=4i64, f in 0.25f32..0.75) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-4..=4).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_length_range(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn filter_map_only_yields_accepted(x in (0u64..100).prop_filter_map("even", |x| {
            if x % 2 == 0 { Some(x) } else { None }
        })) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn early_return_is_supported(x in 0u32..10) {
            if x > 100 {
                return Ok(()); // unreachable, but must typecheck
            }
            prop_assert!(x < 10);
        }
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
