//! No-op derive macros backing the offline `serde` shim.
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` expand to nothing:
//! the workspace never serializes through serde, it only carries the
//! attributes so the real crate can be swapped back in when the build
//! environment has network access.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Expands to nothing (see the crate docs).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing (see the crate docs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
