//! Offline drop-in replacement for the subset of the `rand` 0.8 API used by
//! this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few external APIs it needs as tiny local shims (see
//! `shims/` in the repository root). This crate mirrors the names and
//! signatures of `rand` 0.8 — [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`] — but backs them with a
//! self-contained xoshiro256++ generator instead of ChaCha12.
//!
//! The value *streams* therefore differ from upstream `rand`; everything in
//! this repository treats seeded randomness as an opaque deterministic
//! stream (property tests and layout generators), so only determinism and
//! statistical quality matter, not stream compatibility.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! let xs: Vec<u32> = (0..4).map(|_| a.gen_range(0..100)).collect();
//! let ys: Vec<u32> = (0..4).map(|_| b.gen_range(0..100)).collect();
//! assert_eq!(xs, ys); // same seed, same stream
//! ```

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words; the base trait every generator
/// implements (mirrors `rand::RngCore` at the `u64` granularity this
/// workspace needs).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator constructible from a `u64` seed (mirrors
/// `rand::SeedableRng::seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`] (mirrors
/// `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type (uniform over the
    /// type's natural range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        self.gen::<f64>() < p
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their natural domain (mirrors sampling
/// from `rand::distributions::Standard`).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full single-precision resolution.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1) with full double-precision resolution.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Maps a random word to `[0, span)` without modulo bias (Lemire's
/// widening-multiply method, sans rejection — the bias is < 2⁻⁴⁰ for every
/// span used in this workspace).
fn bounded(rng: &mut impl RngCore, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t; // full-width u64 range
                }
                (start as i128 + bounded(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                start + (end - start) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    //! Concrete generators (mirrors `rand::rngs`).

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64 (upstream `StdRng` is ChaCha12; see the
    /// crate docs for why the stream difference is acceptable).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    //! Slice sampling helpers (mirrors `rand::seq`).

    use super::{Rng, RngCore};

    /// In-place random reordering of slices (mirrors
    /// `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Uniformly shuffles the slice (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..7usize);
            assert!((3..7).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
