//! Offline no-op stand-in for the subset of `serde` this workspace names.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors shims for its external dependencies (see `shims/` in the
//! repository root). The real `serde` is only referenced here through
//! `#[derive(Serialize, Deserialize)]` attributes — nothing in the
//! workspace actually serializes through serde (model weights use the
//! hand-rolled binary format of `oarsmt-nn::serialize`, case files the text
//! format of `oarsmt-geom::io`). The derives therefore expand to nothing,
//! and the traits exist purely so `use serde::{Deserialize, Serialize}`
//! resolves.
//!
//! If real serialization is ever needed, replace this shim with the real
//! crate (the derive attributes in the workspace are already correct).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods; the no-op derive
/// emits no impl).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods; the no-op
/// derive emits no impl).
pub trait Deserialize<'de> {}
