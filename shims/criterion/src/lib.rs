//! Offline micro-benchmark harness mirroring the subset of the `criterion`
//! API this workspace's `benches/` use.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors shims for its external dependencies (see `shims/` in the
//! repository root). This harness keeps the `criterion_group!` /
//! `criterion_main!` / [`Criterion`] surface so `cargo bench` compiles and
//! runs, but replaces criterion's statistics with a plain
//! mean-over-`sample_size` timing report on stdout — good enough for
//! relative comparisons, not for regression detection.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver handed to the functions named in `criterion_group!`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<D: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: D,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<D: std::fmt::Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: D,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (upstream flushes reports here; the shim reports
    /// eagerly, so this only exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group (mirrors
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// An id made of a parameter rendering only.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Times closures; handed to benchmark bodies as `|b| b.iter(...)`.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `sample_size` calls of `f` (one warm-up call first).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(f());
        }
        self.total += start.elapsed();
        self.iters += self.sample_size as u64;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name}: no iterations");
            return;
        }
        let mean = self.total / self.iters as u32;
        println!("{name}: mean {mean:?} over {} iterations", self.iters);
    }
}

/// Declares a benchmark group runner (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
