//! Workspace facade crate: re-exports the public API of every crate in the
//! OARSMT RL router reproduction so examples and integration tests can use a
//! single dependency.

#![forbid(unsafe_code)]
pub use oarsmt as core;
pub use oarsmt_geom as geom;
pub use oarsmt_graph as graph;
pub use oarsmt_mcts as mcts;
pub use oarsmt_nn as nn;
pub use oarsmt_rl as rl;
pub use oarsmt_router as router;
