//! `oarsmt` — command-line interface to the RL ML-OARSMT router.
//!
//! ```text
//! oarsmt gen H V M PINS SEED [FILE]   generate a random case (stdout or FILE)
//! oarsmt route FILE [--selector W]    route a case, print stats + ASCII art
//! oarsmt compare FILE                 run all routers on a case
//! oarsmt train OUT.bin [STAGES] [--threads N] [--simd]
//!              [--trace FILE] [--run-id ID]
//!                                     train a selector, save weights
//! oarsmt trace CASE [--out FILE] [--cap N] [--repeat N]
//! oarsmt trace --verify FILE          flight-record a route / check a trace
//! oarsmt report FILE [FILE2]          render (or diff) telemetry snapshots
//! oarsmt report RUNDIR [RUNDIR2]      render (or diff) run-metrics streams
//! oarsmt report --check CUR BASE [--policy report.toml]
//! oarsmt report --summary DIR [--out FILE]
//! ```
//!
//! Case files use the text format of [`oarsmt_geom::io`]. `train`
//! parallelizes sample generation across `--threads` workers (default: the
//! `OARSMT_THREADS` environment variable, else all cores); generated
//! samples — and therefore the trained weights — are bit-identical for
//! every thread count. `--simd` opts the fit loop into the AVX2+FMA GEMM
//! kernels (build with `--features simd`; see DESIGN.md §9 — weights stay
//! deterministic for a fixed policy but are not bit-identical to scalar).
//!
//! Observability (DESIGN.md §14): `--trace` exports a Chrome
//! `trace_event` JSON viewable in `chrome://tracing` / Perfetto
//! (timestamps are real only when built with `--features
//! telemetry-timing`; without it the event *sequence* still records).
//! `--run-id ID` streams per-stage metrics into `runs/ID/metrics.jsonl`.
//! `report --check` is the CI regression gate: deterministic counters must
//! be bit-identical to the baseline and wall-clock metrics within the
//! policy's bands; violations print as a table and exit nonzero.

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

use oarsmt::rl_router::RlRouter;
use oarsmt::selector::{MedianHeuristicSelector, NeuralSelector};
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_geom::io::{parse_case, write_case};
use oarsmt_geom::HananGraph;
use oarsmt_nn::unet::UNetConfig;
use oarsmt_router::segments::{render_layer, RouteGeometry};
use oarsmt_router::{Lin18Router, Liu14Router, SpanningRouter};
use oarsmt_telemetry::runlog::{RunLog, RunLogger, StageStats};
use oarsmt_telemetry::{tracing, Span};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads_flag = match oarsmt::parallel::take_threads_flag(&mut args) {
        Ok(flag) => flag,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("train") => cmd_train(&args[1..], threads_flag),
        Some("trace") => cmd_trace(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  oarsmt gen H V M PINS SEED [FILE]\n  oarsmt route FILE [--selector WEIGHTS.bin]\n  oarsmt compare FILE\n  oarsmt train OUT.bin [STAGES] [--threads N] [--simd] [--trace FILE] [--run-id ID]\n  oarsmt trace CASE [--out FILE] [--cap N] [--repeat N]\n  oarsmt trace --verify FILE\n  oarsmt report FILE-or-RUNDIR [FILE2-or-RUNDIR2]\n  oarsmt report --check CURRENT BASELINE [--policy report.toml]\n  oarsmt report --summary DIR [--out FILE]\n\nreport renders the telemetry snapshot embedded in a BENCH_*.json artifact\n(or a raw .jsonl snapshot, or a runs/<id> directory); with two arguments\nit prints a diff. --check exits nonzero when counters drift or wall-clock\nleaves the policy band. trace exports Chrome trace_event JSON\n(chrome://tracing; real timestamps need --features telemetry-timing).\nOARSMT_THREADS=N sets the default worker count."
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Removes `--flag VALUE` from `args`, returning the value when present.
fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} expects a value"));
    }
    args.remove(i);
    Ok(Some(args.remove(i)))
}

fn load_case(path: &str) -> Result<HananGraph, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    Ok(parse_case(&text)?)
}

fn cmd_gen(args: &[String]) -> CliResult {
    let nums: Vec<usize> = args
        .iter()
        .take(5)
        .map(|s| s.parse())
        .collect::<Result<_, _>>()
        .map_err(|_| "gen expects: H V M PINS SEED [FILE]")?;
    let [h, v, m, pins, seed] = nums[..] else {
        return Err("gen expects: H V M PINS SEED [FILE]".into());
    };
    let mut gen = CaseGenerator::new(
        GeneratorConfig::paper_costs(h, v, m, (pins, pins)),
        seed as u64,
    );
    let text = write_case(&gen.generate());
    match args.get(5) {
        Some(path) => {
            std::fs::write(path, &text)?;
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_route(args: &[String]) -> CliResult {
    let path = args.first().ok_or("route expects a case file")?;
    let graph = load_case(path)?;
    let weights = args
        .iter()
        .position(|a| a == "--selector")
        .and_then(|i| args.get(i + 1));

    let outcome = match weights {
        Some(w) => {
            let mut selector = NeuralSelector::with_config(UNetConfig {
                in_channels: 7,
                base_channels: 4,
                levels: 2,
                seed: 0,
            });
            selector.load(w)?;
            RlRouter::new(selector).route(&graph)?
        }
        None => RlRouter::new(MedianHeuristicSelector::new()).route(&graph)?,
    };
    println!("{graph}");
    println!("{outcome}");
    let geometry = RouteGeometry::extract(&graph, &outcome.tree);
    println!("{geometry}");
    for layer in 0..graph.m() {
        println!("layer {layer}:");
        print!("{}", render_layer(&graph, &outcome.tree, layer));
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> CliResult {
    let path = args.first().ok_or("compare expects a case file")?;
    let graph = load_case(path)?;
    println!("{graph}");
    let span = SpanningRouter::new().route(&graph)?;
    println!("spanning  [12]-style: cost {:.0}", span.cost());
    let liu = Liu14Router::new().route(&graph)?;
    println!("geo-red.  [16]-style: cost {:.0}", liu.cost());
    let lin = Lin18Router::new().route(&graph)?;
    println!("maze+retr [14]-style: cost {:.0}", lin.cost());
    let ours = RlRouter::new(MedianHeuristicSelector::new()).route(&graph)?;
    println!("rl router (median)  : cost {:.0}", ours.tree.cost());
    if graph.pins().len() <= oarsmt_router::exact::MAX_EXACT_PINS {
        match oarsmt_router::exact::steiner_exact_cost(&graph) {
            Ok(opt) => println!("exact optimum       : cost {opt:.0}"),
            Err(e) => println!("exact optimum       : {e}"),
        }
    }
    Ok(())
}

fn cmd_train(args: &[String], threads_flag: Option<usize>) -> CliResult {
    let mut args = args.to_vec();
    let trace_path = take_value_flag(&mut args, "--trace")?;
    let run_id = take_value_flag(&mut args, "--run-id")?;
    let simd = args.iter().any(|a| a == "--simd");
    args.retain(|a| a != "--simd");
    let out = args.first().ok_or("train expects an output path")?.clone();
    let stages: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let threads = oarsmt::parallel::thread_count(threads_flag);
    eprintln!("[train] generating samples on {threads} worker(s)");
    if simd {
        if oarsmt_nn::simd_available() {
            eprintln!("[train] fit loop: avx2+fma GEMM kernels (ULP-bounded vs scalar)");
        } else {
            eprintln!(
                "[train] --simd requested but unavailable (needs the `simd` build \
                 feature and an AVX2+FMA host); using scalar kernels"
            );
        }
    }
    let config = oarsmt_rl::trainer::TrainerConfig {
        stages,
        threads,
        ..oarsmt_rl::schedule::laptop_schedule(1)
    };
    let mut selector = NeuralSelector::with_config(UNetConfig {
        in_channels: 7,
        base_channels: 4,
        levels: 2,
        seed: 1,
    });
    let mut trainer = oarsmt_rl::Trainer::new(config);
    if simd {
        trainer.set_kernel_policy(oarsmt_nn::KernelPolicy::Simd);
    }

    let manifest = oarsmt_telemetry::Manifest {
        run: "train".to_string(),
        mode: if simd { "simd" } else { "scalar" }.to_string(),
        threads,
        seed: 1,
        timing: oarsmt_telemetry::TIMING_ENABLED,
    };
    let mut logger = match &run_id {
        Some(id) => {
            let mut l = RunLogger::create(Path::new("runs"), id)?;
            l.log_manifest(&manifest)?;
            Some(l)
        }
        None => None,
    };
    // The train trace is reconstructed from the per-stage wall-clock the
    // trainer already reports (via `begin_at`/`end_at`), so it works in
    // every build; stage boundaries are exact, sub-stage detail is not
    // recorded here.
    let mut rec = oarsmt_telemetry::TraceRecorder::new();
    if trace_path.is_some() {
        rec.enable(16 + stages * 8);
    }
    let mut prev = trainer.counters();
    let mut t_ns: u64 = 0;
    for stage in 0..stages {
        let report = trainer.run_stage(&mut selector, stage)?;
        println!("{report}");
        let total = trainer.counters();
        let delta = total.delta_since(&prev);
        prev = total;
        let gen_ns = report.sample_gen_time.as_nanos() as u64;
        let fit_ns = report.train_time.as_nanos() as u64;
        rec.begin_at(Span::TrainStage, t_ns);
        rec.begin_at(Span::TrainGen, t_ns);
        rec.end_at(Span::TrainGen, t_ns + gen_ns);
        rec.begin_at(Span::TrainFit, t_ns + gen_ns);
        rec.end_at(Span::TrainFit, t_ns + gen_ns + fit_ns);
        rec.end_at(Span::TrainStage, t_ns + gen_ns + fit_ns);
        t_ns += gen_ns + fit_ns;
        if let Some(l) = logger.as_mut() {
            l.log_stage(
                &StageStats {
                    stage,
                    samples: report.samples,
                    loss: f64::from(report.avg_loss),
                    mcts_cost_ratio: report.mcts_cost_ratio,
                    gen_secs: report.sample_gen_time.as_secs_f64(),
                    fit_secs: report.train_time.as_secs_f64(),
                },
                &delta,
                &[(Span::TrainGen, gen_ns), (Span::TrainFit, fit_ns)],
            )?;
        }
    }
    if let Some(path) = &trace_path {
        let events = rec.events_in_order();
        std::fs::write(path, tracing::to_chrome_json(&events, rec.dropped()))?;
        eprintln!("[train] trace ({} events) written to {path}", events.len());
    }
    if let Some(l) = &logger {
        eprintln!("[train] metrics in {}", l.dir().display());
    }
    selector.save(&out)?;
    println!("weights saved to {out}");
    Ok(())
}

fn cmd_trace(args: &[String]) -> CliResult {
    let mut args = args.to_vec();
    if let Some(i) = args.iter().position(|a| a == "--verify") {
        let path = args
            .get(i + 1)
            .ok_or("trace --verify expects a trace file")?;
        let text = std::fs::read_to_string(path)?;
        let check = tracing::verify_chrome(&text).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "{path}: OK ({} events, max depth {})",
            check.events, check.max_depth
        );
        return Ok(());
    }
    let out = take_value_flag(&mut args, "--out")?;
    let cap: usize = match take_value_flag(&mut args, "--cap")? {
        Some(v) => v.parse().map_err(|_| format!("bad --cap `{v}`"))?,
        None => 65_536,
    };
    let repeat: usize = match take_value_flag(&mut args, "--repeat")? {
        Some(v) => v.parse().map_err(|_| format!("bad --repeat `{v}`"))?,
        None => 3,
    };
    let path = args.first().ok_or("trace expects a case file")?;
    let graph = load_case(path)?;

    if !oarsmt_telemetry::TIMING_ENABLED {
        eprintln!(
            "[trace] built without `telemetry-timing`: event sequence is \
             recorded but every timestamp is zero"
        );
    }
    let router = oarsmt_router::OarmstRouter::new();
    let mut ctx = oarsmt_router::RouteContext::new();
    ctx.trace.enable(cap);
    for _ in 0..repeat.max(1) {
        let tree = router.route_in(&mut ctx, &graph, &[])?;
        ctx.recycle_tree(tree);
    }
    let events = ctx.trace.events_in_order();
    print!("{}", tracing::render_summary(&tracing::summarize(&events)));
    if ctx.trace.dropped() > 0 {
        println!(
            "({} older events dropped; raise --cap to keep them)",
            ctx.trace.dropped()
        );
    }
    if let Some(out) = out {
        let json = tracing::to_chrome_json(&events, ctx.trace.dropped());
        tracing::verify_chrome(&json).map_err(|e| format!("internal: {e}"))?;
        std::fs::write(&out, json)?;
        println!("trace ({} events) written to {out}", events.len());
    }
    Ok(())
}

fn cmd_report(args: &[String]) -> CliResult {
    let mut args = args.to_vec();

    if let Some(i) = args.iter().position(|a| a == "--summary") {
        args.remove(i);
        let out = take_value_flag(&mut args, "--out")?;
        let dir = args.first().ok_or("report --summary expects a directory")?;
        let text = oarsmt_telemetry::check::summary(Path::new(dir))?;
        match out {
            Some(path) => {
                std::fs::write(&path, &text)?;
                eprintln!("summary written to {path}");
            }
            None => print!("{text}"),
        }
        return Ok(());
    }

    if let Some(i) = args.iter().position(|a| a == "--check") {
        args.remove(i);
        let policy = match take_value_flag(&mut args, "--policy")? {
            Some(path) => oarsmt_telemetry::Policy::parse(&std::fs::read_to_string(&path)?)
                .map_err(|e| format!("{path}: {e}"))?,
            None => oarsmt_telemetry::Policy::default(),
        };
        let [cur, base] = &args[..] else {
            return Err("report --check expects: CURRENT BASELINE [--policy FILE]".into());
        };
        let report = oarsmt_telemetry::check::check(
            &std::fs::read_to_string(cur).map_err(|e| format!("{cur}: {e}"))?,
            &std::fs::read_to_string(base).map_err(|e| format!("{base}: {e}"))?,
            &policy,
        )?;
        if report.ok() {
            println!(
                "check OK: {} counters bit-identical, {} wall-clock metrics in band",
                report.counters_checked, report.metrics_checked
            );
            return Ok(());
        }
        print!("{}", oarsmt_telemetry::check::render_check(&report));
        return Err(format!(
            "regression check failed ({} violations)",
            report.violations.len()
        )
        .into());
    }

    let first = args.first().ok_or("report expects: FILE [FILE2]")?;
    // A run directory (runs/<id>) renders/diffs its metrics stream; a file
    // renders/diffs the embedded telemetry snapshot.
    if Path::new(first).is_dir() {
        let a = RunLog::load(Path::new(first))?;
        match args.get(1) {
            Some(second) => {
                let b = RunLog::load(Path::new(second))?;
                print!("{}", oarsmt_telemetry::runlog::diff(&a, &b));
            }
            None => print!("{}", oarsmt_telemetry::runlog::render(&a)),
        }
        return Ok(());
    }
    let load =
        |path: &str| -> Result<oarsmt_telemetry::TelemetrySnapshot, Box<dyn std::error::Error>> {
            let text = std::fs::read_to_string(path)?;
            oarsmt_telemetry::TelemetrySnapshot::from_jsonl(&text)
                .map_err(|e| format!("{path}: {e}").into())
        };
    let a = load(first)?;
    match args.get(1) {
        Some(second) => {
            let b = load(second)?;
            print!("{}", oarsmt_telemetry::report::diff(&a, &b));
        }
        None => print!("{}", oarsmt_telemetry::report::render(&a)),
    }
    Ok(())
}
