//! `oarsmt` — command-line interface to the RL ML-OARSMT router.
//!
//! ```text
//! oarsmt gen H V M PINS SEED [FILE]   generate a random case (stdout or FILE)
//! oarsmt route FILE [--selector W]    route a case, print stats + ASCII art
//! oarsmt compare FILE                 run all routers on a case
//! oarsmt train OUT.bin [STAGES] [--threads N] [--simd]
//!                                     train a selector, save weights
//! oarsmt report FILE [FILE2]          render (or diff) telemetry snapshots
//! ```
//!
//! Case files use the text format of [`oarsmt_geom::io`]. `train`
//! parallelizes sample generation across `--threads` workers (default: the
//! `OARSMT_THREADS` environment variable, else all cores); generated
//! samples — and therefore the trained weights — are bit-identical for
//! every thread count. `--simd` opts the fit loop into the AVX2+FMA GEMM
//! kernels (build with `--features simd`; see DESIGN.md §9 — weights stay
//! deterministic for a fixed policy but are not bit-identical to scalar).

#![forbid(unsafe_code)]

use std::process::ExitCode;

use oarsmt::rl_router::RlRouter;
use oarsmt::selector::{MedianHeuristicSelector, NeuralSelector};
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_geom::io::{parse_case, write_case};
use oarsmt_geom::HananGraph;
use oarsmt_nn::unet::UNetConfig;
use oarsmt_router::segments::{render_layer, RouteGeometry};
use oarsmt_router::{Lin18Router, Liu14Router, SpanningRouter};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads_flag = match oarsmt::parallel::take_threads_flag(&mut args) {
        Ok(flag) => flag,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("train") => cmd_train(&args[1..], threads_flag),
        Some("report") => cmd_report(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  oarsmt gen H V M PINS SEED [FILE]\n  oarsmt route FILE [--selector WEIGHTS.bin]\n  oarsmt compare FILE\n  oarsmt train OUT.bin [STAGES] [--threads N] [--simd]\n  oarsmt report FILE [FILE2]\n\nreport renders the telemetry snapshot embedded in a BENCH_*.json artifact\n(or a raw .jsonl snapshot); with two files it prints a counter/span diff.\nOARSMT_THREADS=N sets the default worker count."
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn load_case(path: &str) -> Result<HananGraph, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    Ok(parse_case(&text)?)
}

fn cmd_gen(args: &[String]) -> CliResult {
    let nums: Vec<usize> = args
        .iter()
        .take(5)
        .map(|s| s.parse())
        .collect::<Result<_, _>>()
        .map_err(|_| "gen expects: H V M PINS SEED [FILE]")?;
    let [h, v, m, pins, seed] = nums[..] else {
        return Err("gen expects: H V M PINS SEED [FILE]".into());
    };
    let mut gen = CaseGenerator::new(
        GeneratorConfig::paper_costs(h, v, m, (pins, pins)),
        seed as u64,
    );
    let text = write_case(&gen.generate());
    match args.get(5) {
        Some(path) => {
            std::fs::write(path, &text)?;
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_route(args: &[String]) -> CliResult {
    let path = args.first().ok_or("route expects a case file")?;
    let graph = load_case(path)?;
    let weights = args
        .iter()
        .position(|a| a == "--selector")
        .and_then(|i| args.get(i + 1));

    let outcome = match weights {
        Some(w) => {
            let mut selector = NeuralSelector::with_config(UNetConfig {
                in_channels: 7,
                base_channels: 4,
                levels: 2,
                seed: 0,
            });
            selector.load(w)?;
            RlRouter::new(selector).route(&graph)?
        }
        None => RlRouter::new(MedianHeuristicSelector::new()).route(&graph)?,
    };
    println!("{graph}");
    println!("{outcome}");
    let geometry = RouteGeometry::extract(&graph, &outcome.tree);
    println!("{geometry}");
    for layer in 0..graph.m() {
        println!("layer {layer}:");
        print!("{}", render_layer(&graph, &outcome.tree, layer));
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> CliResult {
    let path = args.first().ok_or("compare expects a case file")?;
    let graph = load_case(path)?;
    println!("{graph}");
    let span = SpanningRouter::new().route(&graph)?;
    println!("spanning  [12]-style: cost {:.0}", span.cost());
    let liu = Liu14Router::new().route(&graph)?;
    println!("geo-red.  [16]-style: cost {:.0}", liu.cost());
    let lin = Lin18Router::new().route(&graph)?;
    println!("maze+retr [14]-style: cost {:.0}", lin.cost());
    let ours = RlRouter::new(MedianHeuristicSelector::new()).route(&graph)?;
    println!("rl router (median)  : cost {:.0}", ours.tree.cost());
    if graph.pins().len() <= oarsmt_router::exact::MAX_EXACT_PINS {
        match oarsmt_router::exact::steiner_exact_cost(&graph) {
            Ok(opt) => println!("exact optimum       : cost {opt:.0}"),
            Err(e) => println!("exact optimum       : {e}"),
        }
    }
    Ok(())
}

fn cmd_train(args: &[String], threads_flag: Option<usize>) -> CliResult {
    let out = args.first().ok_or("train expects an output path")?;
    let stages: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let threads = oarsmt::parallel::thread_count(threads_flag);
    let simd = args.iter().any(|a| a == "--simd");
    eprintln!("[train] generating samples on {threads} worker(s)");
    if simd {
        if oarsmt_nn::simd_available() {
            eprintln!("[train] fit loop: avx2+fma GEMM kernels (ULP-bounded vs scalar)");
        } else {
            eprintln!(
                "[train] --simd requested but unavailable (needs the `simd` build \
                 feature and an AVX2+FMA host); using scalar kernels"
            );
        }
    }
    let config = oarsmt_rl::trainer::TrainerConfig {
        stages,
        threads,
        ..oarsmt_rl::schedule::laptop_schedule(1)
    };
    let mut selector = NeuralSelector::with_config(UNetConfig {
        in_channels: 7,
        base_channels: 4,
        levels: 2,
        seed: 1,
    });
    let mut trainer = oarsmt_rl::Trainer::new(config);
    if simd {
        trainer.set_kernel_policy(oarsmt_nn::KernelPolicy::Simd);
    }
    for report in trainer.run(&mut selector)? {
        println!("{report}");
    }
    selector.save(out)?;
    println!("weights saved to {out}");
    Ok(())
}

fn cmd_report(args: &[String]) -> CliResult {
    let first = args.first().ok_or("report expects: FILE [FILE2]")?;
    let load =
        |path: &str| -> Result<oarsmt_telemetry::TelemetrySnapshot, Box<dyn std::error::Error>> {
            let text = std::fs::read_to_string(path)?;
            oarsmt_telemetry::TelemetrySnapshot::from_jsonl(&text)
                .map_err(|e| format!("{path}: {e}").into())
        };
    let a = load(first)?;
    match args.get(1) {
        Some(second) => {
            let b = load(second)?;
            print!("{}", oarsmt_telemetry::report::diff(&a, &b));
        }
        None => print!("{}", oarsmt_telemetry::report::render(&a)),
    }
    Ok(())
}
